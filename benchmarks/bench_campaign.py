"""Campaign-engine benchmark: shard invariance, warm resume, 10^5 scale.

The campaign engine (`repro.verify.campaign`) turns the conformance
fuzzer into an instrument that can check a hundred thousand programs
on one machine: sharded over `run_conformance` work units, checkpointed
to an atomic state file, deduplicating failures into fingerprinted
classes.  This bench enforces the three contracts that make a campaign
trustworthy at that scale:

- **shard invariance** -- the same fixed seed range produces a
  byte-identical merged triage at shard counts {1, 4, 8} (quick mode:
  {1, 4}).  If sharding leaked into results, a resumed or re-sharded
  campaign could not be compared against an old one;
- **warm resume** -- a campaign interrupted by a wall-clock budget and
  resumed against a warm artifact cache completes with ZERO fresh
  compiles: every shard re-runs compile-side entirely from the cache;
- **scale** (full mode only) -- a 10^5-program campaign (profile
  "small", target tc25: both compilers x all three simulator tiers,
  6 matrix cells per program) completes on one machine; the report
  records the sustained programs/sec.

Results land in ``BENCH_CAMPAIGN.json`` at the repository root.

Run:  python benchmarks/bench_campaign.py             (full, ~35 min)
or :  python benchmarks/bench_campaign.py --quick     (CI smoke, ~2k
      programs; uses ``.repro-cache/`` so GitHub's actions/cache can
      persist warmth across CI runs; ``--state-dir`` keeps the state
      files for artifact upload)
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

import repro.cache
from repro.verify.campaign import (
    CampaignConfig, merged_triage_text, run_campaign,
)

ROOT = Path(__file__).resolve().parent.parent

SEED = 0
PROFILE = "small"
TARGETS = ("tc25", "risc16")
INVARIANCE_PROGRAMS = 300
INVARIANCE_SHARDS = (1, 4, 8)
QUICK_PROGRAMS = 2000
QUICK_SHARDS = (1, 4)
SCALE_PROGRAMS = 100_000
SCALE_SHARDS = 64
#: The scale stage runs tc25 alone: it is the paper's flagship DSP and
#: the only target with two compilers, so each program still covers
#: six matrix cells (record+baseline x reference/fast/jit) while the
#: campaign sustains ~2x the programs/sec of the two-target matrix.
SCALE_TARGETS = ("tc25",)


def _config(programs: int, shards: int,
            targets=TARGETS) -> CampaignConfig:
    return CampaignConfig(seed=SEED, programs=programs, shards=shards,
                          targets=targets, profile=PROFILE)


def _run(config: CampaignConfig, state_path: Path, cache_dir: Path,
         resume: bool = False, budget: Optional[float] = None,
         progress=None):
    """One timed campaign invocation against the shared artifact cache."""
    repro.cache.configure(cache_dir)
    try:
        started = perf_counter()
        result = run_campaign(config, state_path, resume=resume,
                              budget_seconds=budget, progress=progress)
        wall = perf_counter() - started
    finally:
        repro.cache.configure(None)
    return result, wall


def _shard_compiles(state: dict, shard_indices) -> Dict[str, int]:
    """Fresh-compile / cache-hit totals over a set of done shards."""
    fresh = hits = 0
    for shard in state["shards"]:
        if shard["index"] in shard_indices and shard["status"] == "done":
            fresh += shard.get("compiles", 0)
            hits += shard.get("artifact_hits", 0)
    return {"compiles": fresh, "artifact_hits": hits}


def stage_invariance(programs: int, shard_counts, state_dir: Path,
                     cache_dir: Path) -> Dict[str, object]:
    """The same seed range at several shard counts: one triage."""
    rows: List[Dict[str, object]] = []
    texts: List[str] = []
    for shards in shard_counts:
        state_path = state_dir / f"invariance-{shards}.json"
        result, wall = _run(_config(programs, shards), state_path,
                            cache_dir)
        if not (result.complete and result.ok):
            raise RuntimeError(
                f"invariance campaign at {shards} shards did not "
                f"complete: {result.errors}")
        texts.append(merged_triage_text(result.state))
        rows.append({
            "shards": shards,
            "seconds": round(wall, 3),
            "programs_per_second": round(programs / wall, 2),
            "mismatches": result.mismatch_count,
        })
        print(f"  {shards} shard(s): {wall:.1f}s "
              f"({programs / wall:.1f} programs/s)")
    return {
        "programs": programs,
        "shard_counts": list(shard_counts),
        "triage_identical": len(set(texts)) == 1,
        "runs": rows,
    }


def stage_resume(programs: int, shards: int, state_dir: Path,
                 cache_dir: Path) -> Dict[str, object]:
    """Interrupt on a budget, resume warm: zero fresh compiles.

    The range matches the invariance stage, so its artifacts are
    already in the shared cache -- exactly the state of a real resumed
    campaign, where every interrupted-then-retried shard recompiles
    programs the first attempt already paid for.
    """
    state_path = state_dir / "resume.json"
    config = _config(programs, shards)
    stopped, first_wall = _run(config, state_path, cache_dir,
                               budget=0.0)
    done_before = {shard["index"] for shard in stopped.state["shards"]
                   if shard["status"] == "done"}
    resumed, resume_wall = _run(config, state_path, cache_dir,
                                resume=True)
    if not (resumed.complete and resumed.ok):
        raise RuntimeError(f"resume did not complete: {resumed.errors}")
    resumed_shards = {shard["index"]
                      for shard in resumed.state["shards"]
                      if shard["status"] == "done"} - done_before
    counts = _shard_compiles(resumed.state, resumed_shards)
    attempted = counts["compiles"] + counts["artifact_hits"]
    # Third invocation: resuming a *finished* campaign is free.
    finished, noop_wall = _run(config, state_path, cache_dir,
                               resume=True)
    print(f"  interrupted at {len(done_before)}/{shards} shards; "
          f"resume ran {len(resumed_shards)} shards in "
          f"{resume_wall:.1f}s with {counts['compiles']} fresh "
          f"compiles / {counts['artifact_hits']} cache hits")
    return {
        "programs": programs,
        "shards": shards,
        "budget_stopped_after_shards": len(done_before),
        "resume_shards": len(resumed_shards),
        "resume_seconds": round(resume_wall, 3),
        "resume_compiles": counts["compiles"],
        "resume_artifact_hits": counts["artifact_hits"],
        "resume_hit_rate": (round(counts["artifact_hits"] / attempted, 4)
                            if attempted else 0.0),
        "zero_recompile": counts["compiles"] == 0,
        "noop_resume_shards": finished.shards_run,
        "noop_resume_seconds": round(noop_wall, 3),
    }


def stage_scale(programs: int, shards: int, state_dir: Path,
                cache_dir: Path) -> Dict[str, object]:
    """The 10^5-program campaign itself (resumable while it runs)."""
    state_path = state_dir / "scale.json"
    config = _config(programs, shards, targets=SCALE_TARGETS)
    resume = state_path.exists()    # a killed bench picks up its range
    result, wall = _run(config, state_path, cache_dir, resume=resume,
                        progress=print)
    if not (result.complete and result.ok):
        raise RuntimeError(f"scale campaign did not complete: "
                           f"{result.errors}")
    counts = _shard_compiles(result.state,
                             {shard["index"]
                              for shard in result.state["shards"]})
    rate = (result.programs_run / wall if wall and result.programs_run
            else 0.0)
    print(f"  {result.programs_run} programs in {wall:.1f}s "
          f"({rate:.1f} programs/s sustained), "
          f"{result.mismatch_count} mismatches")
    return {
        "programs": programs,
        "shards": shards,
        "targets": list(SCALE_TARGETS),
        "profile": PROFILE,
        "seconds": round(wall, 3),
        "programs_run_this_invocation": result.programs_run,
        "programs_per_second": round(rate, 2),
        "accumulated_shard_seconds": result.state["elapsed_seconds"],
        "compiles": counts["compiles"],
        "artifact_hits": counts["artifact_hits"],
        "mismatches": result.mismatch_count,
        "classes": len(result.state["classes"]),
    }


def render(report: Dict[str, object]) -> str:
    invariance = report["invariance"]
    resume = report["resume"]
    lines = [
        f"invariance: {invariance['programs']} programs at shard counts "
        f"{invariance['shard_counts']} -> triage byte-identical: "
        + ("yes" if invariance["triage_identical"] else "NO"),
        f"resume: budget-interrupted at "
        f"{resume['budget_stopped_after_shards']} shards, warm resume "
        f"ran {resume['resume_shards']} shards with "
        f"{resume['resume_compiles']} fresh compiles "
        f"(hit rate {resume['resume_hit_rate']:.0%}) -> "
        f"zero-recompile: "
        + ("yes" if resume["zero_recompile"] else "NO"),
    ]
    scale = report.get("scale")
    if scale:
        lines.append(
            f"scale: {scale['programs']} programs x "
            f"{{{','.join(scale['targets'])}}} (profile "
            f"{scale['profile']}) in {scale['seconds']:.0f}s = "
            f"{scale['programs_per_second']:.1f} programs/s sustained, "
            f"{scale['mismatches']} mismatches, "
            f"{scale['classes']} classes")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: ~2k programs, shard counts "
                             "{1,4}, no 10^5 scale stage")
    parser.add_argument("--programs", type=int, default=None,
                        help="override the invariance-range size "
                             f"(default {INVARIANCE_PROGRAMS}, quick "
                             f"{QUICK_PROGRAMS})")
    parser.add_argument("--scale-programs", type=int,
                        default=SCALE_PROGRAMS,
                        help="programs in the scale stage "
                             f"(default {SCALE_PROGRAMS})")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent artifact cache dir for "
                             "--quick (default .repro-cache/); full "
                             "runs use a throwaway temp dir")
    parser.add_argument("--state-dir", type=Path, default=None,
                        help="where campaign state files live "
                             "(default: throwaway temp dir); pass a "
                             "real dir to keep them, e.g. for CI "
                             "artifact upload or to resume a killed "
                             "scale run")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_CAMPAIGN.json"),
                        help="where the report JSON is written")
    args = parser.parse_args(argv)

    scratch: List[str] = []

    def _dir(chosen: Optional[Path], prefix: str) -> Path:
        if chosen is not None:
            chosen.mkdir(parents=True, exist_ok=True)
            return chosen
        path = tempfile.mkdtemp(prefix=prefix)
        scratch.append(path)
        return Path(path)

    if args.quick:
        cache_dir = args.cache_dir or repro.cache.default_cache_dir()
    else:
        cache_dir = _dir(args.cache_dir, "bench-campaign-cache-")
    state_dir = _dir(args.state_dir, "bench-campaign-state-")
    programs = args.programs or (QUICK_PROGRAMS if args.quick
                                 else INVARIANCE_PROGRAMS)
    shard_counts = QUICK_SHARDS if args.quick else INVARIANCE_SHARDS

    try:
        print(f"invariance: {programs} programs x "
              f"{{{','.join(TARGETS)}}}, profile {PROFILE}")
        invariance = stage_invariance(programs, shard_counts,
                                      state_dir, cache_dir)
        print("resume:")
        resume = stage_resume(programs, max(shard_counts), state_dir,
                              cache_dir)
        report: Dict[str, object] = {
            "seed": SEED,
            "profile": PROFILE,
            "targets": list(TARGETS),
            "quick": bool(args.quick),
            "invariance": invariance,
            "resume": resume,
        }
        if not args.quick:
            print(f"scale: {args.scale_programs} programs over "
                  f"{SCALE_SHARDS} shards")
            report["scale"] = stage_scale(args.scale_programs,
                                          SCALE_SHARDS, state_dir,
                                          cache_dir)
    finally:
        for path in scratch:
            shutil.rmtree(path, ignore_errors=True)

    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["invariance"]["triage_identical"]:
        print("FAIL: merged triage differed across shard counts",
              file=sys.stderr)
        return 1
    if report["invariance"]["runs"][0]["mismatches"]:
        print("FAIL: the clean matrix produced mismatches",
              file=sys.stderr)
        return 1
    if not report["resume"]["zero_recompile"]:
        print("FAIL: warm resume recompiled "
              f"{report['resume']['resume_compiles']} programs",
              file=sys.stderr)
        return 1
    if report["resume"]["noop_resume_shards"]:
        print("FAIL: resuming a finished campaign re-ran shards",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
