"""Sec. 4.2: retargeting breadth and the codesign loop.

One source suite, one compiler, many targets: the TC25- and 56k-
flavoured DSPs, the RISC core, and a sweep of ASIP configurations.  The
paper's argument is that an explicit target model makes this routine;
the bench times a full retarget (compile all ten kernels for every
target) and prints the size/cycle matrix a codesign team would read.

Run:  pytest benchmarks/bench_retarget.py --benchmark-only -s
or :  python benchmarks/bench_retarget.py
"""

from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def _tdl_demo16():
    import pathlib
    from repro.tdl import load_target
    text = pathlib.Path(__file__).parent.parent \
        / "examples" / "targets" / "demo16.tdl"
    return load_target(text.read_text())

FPC = FixedPointContext(16)

TARGETS = [
    ("tc25", lambda: TC25()),
    ("m56", lambda: M56()),
    ("risc16", lambda: Risc16()),
    ("asip/full", lambda: Asip()),
    ("asip/no-repeat", lambda: Asip(AsipParams(has_repeat=False))),
    ("asip/no-mac", lambda: Asip(AsipParams(has_mac=False,
                                            has_repeat=False))),
    ("tdl:demo16", _tdl_demo16),
]


def retarget_all():
    matrix = {}
    for label, make in TARGETS:
        target = make()
        words = cycles = 0
        for spec in all_kernels():
            compiled = RecordCompiler(target).compile(spec.program)
            inputs = spec.inputs(seed=0)
            reference = spec.program.initial_environment()
            for key, value in inputs.items():
                reference[key] = list(value) if isinstance(value, list) \
                    else value
            spec.program.run(reference, FPC)
            outputs, state = run_compiled(compiled, inputs)
            for symbol in spec.program.symbols.values():
                if symbol.role == "output":
                    assert outputs[symbol.name] == \
                        reference[symbol.name], (label, spec.name)
            words += compiled.words()
            cycles += state.cycles
        matrix[label] = (words, cycles)
    return matrix


def report(matrix) -> str:
    lines = ["all 10 DSPStone kernels, RECORD pipeline, per target:",
             f"  {'target':16s} {'words':>7s} {'cycles':>8s}"]
    for label, (words, cycles) in matrix.items():
        lines.append(f"  {label:16s} {words:>7d} {cycles:>8d}")
    return "\n".join(lines)


def test_retarget(benchmark):
    matrix = benchmark.pedantic(retarget_all, iterations=1, rounds=1)
    print()
    print(report(matrix))

    assert len(matrix) == len(TARGETS)
    # architecture shapes show through: removing DSP features costs
    # cycles on the ASIP family
    assert matrix["asip/full"][1] < matrix["asip/no-repeat"][1]
    assert matrix["asip/no-repeat"][1] <= matrix["asip/no-mac"][1]


if __name__ == "__main__":
    print(report(retarget_all()))
