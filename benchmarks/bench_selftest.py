"""Sec. 4.5: self-test program generation with a retargetable compiler.

Measures decoder-fault coverage as a function of the number of
generated test programs, on two different targets -- the retargetable
part being that the *same* generator serves both.  Times suite
generation + fault grading.

Run:  pytest benchmarks/bench_selftest.py --benchmark-only -s
or :  python benchmarks/bench_selftest.py
"""

from repro.selftest import generate_self_test, run_self_test
from repro.selftest.generator import fault_universe
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

PROGRAM_COUNTS = (2, 6, 12, 20)


def sweep():
    results = {}
    for target in (TC25(), Risc16()):
        curve = []
        for count in PROGRAM_COUNTS:
            suite = generate_self_test(target, programs=count, seed=0)
            grade = run_self_test(target, suite=suite)
            words = sum(p.words() for p in suite.programs)
            curve.append((count, words, grade.coverage))
        results[target.name] = curve
    return results


def report(results) -> str:
    lines = []
    for name, curve in results.items():
        universe = len(fault_universe(
            TC25() if name == "tc25" else Risc16()))
        lines.append(f"{name}: {universe} decoder faults")
        lines.append(f"  {'programs':>9s} {'words':>6s} {'coverage':>9s}")
        for count, words, coverage in curve:
            lines.append(f"  {count:>9d} {words:>6d} {coverage:>8.0%}")
    return "\n".join(lines)


def test_selftest(benchmark):
    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print()
    print(report(results))

    for name, curve in results.items():
        coverages = [coverage for _count, _words, coverage in curve]
        # more programs never hurt, and the final suite catches most
        assert all(b >= a for a, b in zip(coverages, coverages[1:])), name
        assert coverages[-1] >= 0.7, name


if __name__ == "__main__":
    print(report(sweep()))
