"""Compile-time benchmark: the selection fast path, measured.

Sec. 1 of the paper concedes that "compilers for DSPs generate code of
insufficient quality" partly because better algorithms cost compile
time; RECORD's answer is to spend the time cleverly.  This bench
quantifies what the caching layers buy on the full DSPStone kernel x
target matrix:

- **uncached serial** -- the historical path: global tree interning
  off, a fresh compiler (fresh BURS matcher, rebuilt grammar) per
  compile;
- **cached serial** -- interned trees, memoized grammars, and one
  pooled matcher per (compiler, target) reused across every kernel;
- **cached parallel** -- the same jobs on the compile farm's process
  pool (only meaningful on multi-core machines).

The emitted assembly must be byte-identical across all modes -- the
caches are transparent or they are wrong -- and the results land in
``BENCH_COMPILE.json`` at the repository root: per-stage wall-clock
(variants, labeling, addressing, modes), BURS label-cache hit rates,
and serial-vs-parallel wall time.

Run:  python benchmarks/bench_compile_speed.py            (full matrix)
or :  python benchmarks/bench_compile_speed.py --quick    (CI smoke)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.dspstone import all_kernels
from repro.evalx.farm import (
    CompileJob, FarmResult, clear_worker_pool, compile_many,
    default_workers, run_job,
)
from repro.ir.trees import (
    clear_tree_caches, intern_table_size, set_tree_caching,
)

ROOT = Path(__file__).resolve().parent.parent

#: (compiler, target) cells of the matrix -- the same 5 producers the
#: timing bench checks, i.e. every compile the evaluation relies on.
CELLS: Tuple[Tuple[str, str], ...] = (
    ("record", "tc25"), ("baseline", "tc25"),
    ("record", "m56"), ("record", "risc16"), ("record", "asip"),
)

#: Per-stage timing keys aggregated from CompiledProgram.stats.
STAGES = ("selection", "variants", "labeling", "loop_opt", "peephole",
          "addressing", "modes", "finalize")


def build_jobs(kernels: List[str], fresh: bool) -> List[CompileJob]:
    return [CompileJob(kernel=kernel, compiler=compiler, target=target,
                       fresh=fresh)
            for kernel in kernels
            for compiler, target in CELLS]


def _aggregate(results: List[FarmResult]) -> Dict[str, object]:
    """Stage timings and label-cache telemetry summed over a run."""
    timings = {stage: 0.0 for stage in STAGES}
    hits = misses = 0
    for result in results:
        stats = result.compiled.stats
        for stage, seconds in stats.get("timings", {}).items():
            if stage in timings:
                timings[stage] += seconds
        selection = stats.get("selection")
        if selection is not None:
            hits += selection.label_hits
            misses += selection.label_misses
    total = hits + misses
    return {
        "timings_seconds": {k: round(v, 6) for k, v in timings.items()},
        "label_hits": hits,
        "label_misses": misses,
        "label_hit_rate": round(hits / total, 4) if total else 0.0,
    }


def _check_identical(reference: List[FarmResult],
                     measured: List[FarmResult]) -> List[str]:
    """Job keys whose listings diverge between two runs."""
    diverged = []
    for ref, got in zip(reference, measured):
        key = f"{ref.job.kernel}/{ref.job.compiler}/{ref.job.target}"
        if (ref.ok != got.ok
                or (ref.ok and ref.compiled.listing()
                    != got.compiled.listing())):
            diverged.append(key)
    return diverged


def run_uncached_serial(jobs: List[CompileJob]) -> Tuple[float,
                                                         List[FarmResult]]:
    """The historical path: no tree interning, cold compiler per job."""
    previous = set_tree_caching(False)
    try:
        clear_worker_pool()
        started = perf_counter()
        results = [run_job(job) for job in jobs]
        wall = perf_counter() - started
    finally:
        set_tree_caching(previous)
    return wall, results


def run_cached_serial(jobs: List[CompileJob]) -> Tuple[float,
                                                       List[FarmResult]]:
    """All caches on, starting cold, one process."""
    clear_tree_caches()
    clear_worker_pool()
    started = perf_counter()
    results = [run_job(job) for job in jobs]
    wall = perf_counter() - started
    return wall, results


def run_cached_parallel(jobs: List[CompileJob]
                        ) -> Tuple[float, List[FarmResult], int]:
    workers = default_workers()
    started = perf_counter()
    results = compile_many(jobs, parallel=True)
    wall = perf_counter() - started
    return wall, results, workers


def measure(kernels: Optional[List[str]] = None,
            with_parallel: bool = True) -> Dict[str, object]:
    if kernels is None:
        kernels = [spec.name for spec in all_kernels()]
    fresh_jobs = build_jobs(kernels, fresh=True)
    pooled_jobs = build_jobs(kernels, fresh=False)

    uncached_wall, uncached = run_uncached_serial(fresh_jobs)
    cached_wall, cached = run_cached_serial(pooled_jobs)
    diverged = _check_identical(uncached, cached)

    report: Dict[str, object] = {
        "jobs": len(fresh_jobs),
        "kernels": kernels,
        "cells": [f"{compiler}/{target}" for compiler, target in CELLS],
        "intern_table_size": intern_table_size(),
        "identical_output": not diverged,
        "diverged": diverged,
        "modes": {
            "uncached_serial": {
                "wall_seconds": round(uncached_wall, 6),
                **_aggregate(uncached),
            },
            "cached_serial": {
                "wall_seconds": round(cached_wall, 6),
                **_aggregate(cached),
            },
        },
        "speedup_cached_vs_uncached":
            round(uncached_wall / cached_wall, 3) if cached_wall else 0.0,
    }
    if with_parallel:
        parallel_wall, parallel, workers = run_cached_parallel(pooled_jobs)
        diverged_parallel = _check_identical(uncached, parallel)
        report["modes"]["cached_parallel"] = {
            "wall_seconds": round(parallel_wall, 6),
            "workers": workers,
        }
        if diverged_parallel:
            report["identical_output"] = False
            report["diverged"] = sorted(set(diverged)
                                        | set(diverged_parallel))
    return report


def render(report: Dict[str, object]) -> str:
    modes = report["modes"]
    lines = [f"{'mode':18s} {'wall (s)':>10s} {'labeling (s)':>13s} "
             f"{'hit rate':>9s}",
             "-" * 54]
    for name, mode in modes.items():
        timings = mode.get("timings_seconds", {})
        rate = mode.get("label_hit_rate")
        lines.append(
            f"{name:18s} {mode['wall_seconds']:>10.4f} "
            f"{timings.get('labeling', 0.0):>13.4f} "
            f"{'' if rate is None else format(rate, '>9.1%')}")
    lines.append("-" * 54)
    lines.append(f"speedup (cached/uncached serial): "
                 f"{report['speedup_cached_vs_uncached']:.2f}x over "
                 f"{report['jobs']} compiles")
    lines.append("output identical across modes: "
                 + ("yes" if report["identical_output"] else
                    "NO -- " + ", ".join(report["diverged"])))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 3 kernels, serial modes only, "
                             "no JSON; fails on any cached-vs-cold "
                             "output divergence")
    parser.add_argument("--output", default=str(ROOT /
                                                "BENCH_COMPILE.json"),
                        help="where the full run writes its JSON")
    args = parser.parse_args(argv)

    if args.quick:
        kernels = ["real_update", "fir", "convolution"]
        report = measure(kernels, with_parallel=False)
        print(render(report))
        return 0 if report["identical_output"] else 1

    report = measure()
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not report["identical_output"]:
        return 1
    if report["speedup_cached_vs_uncached"] < 2.0:
        print("FAIL: expected >= 2x cached-vs-uncached speedup",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
