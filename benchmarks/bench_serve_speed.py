"""Compile-service throughput benchmark: the dedup ladder end to end.

PR 6 made batch compiles cheap (farm) and PR 5 made repeats free
(artifact cache); the serve layer composes them behind one socket.
This bench boots a real server, drives the seeded hot/cold workload of
:mod:`repro.serve.traffic` over concurrent connections, and enforces
the three contracts the service exists to provide:

- **zero recompiles** -- within one run, each (program, compiler,
  target) cell is farm-compiled at most once; every other request in
  the cell is answered by the in-flight map or the artifact store;
- **hot repeats are all-hot** -- a second pass over the identical
  workload dispatches *nothing* to the farm: 100% of keyed requests
  come back ``cache`` (or ``coalesced`` behind a concurrent twin);
- **identity** -- listings, outputs and cycle counts match a direct
  in-process ``repro.api`` call byte for byte (modulo the JSON wire).

Results land in ``BENCH_SERVE.json`` at the repository root:
sustained requests/second, p50/p95 latency, served-by breakdown and
the server's own dedup/cache counters for both passes.

Run:  python benchmarks/bench_serve_speed.py             (full load)
or :  python benchmarks/bench_serve_speed.py --quick     (CI smoke)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.client import ServeClient                  # noqa: E402
from repro.serve.server import CompileService, ReproServer  # noqa: E402
from repro.serve.traffic import (                           # noqa: E402
    TrafficConfig, build_requests, drive,
)

REQUESTS = 200
QUICK_REQUESTS = 60
COLD_PROGRAMS = 20
QUICK_COLD = 8
CONNECTIONS = 4


class LiveServer:
    """A server on a background thread with its own event loop."""

    def __init__(self, cache_dir: Path, use_pool: bool,
                 workers: Optional[int]) -> None:
        self._ready = threading.Event()
        self._box: Dict[str, object] = {}
        self._thread = threading.Thread(
            target=self._serve, args=(cache_dir, use_pool, workers),
            daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise RuntimeError("server failed to start")
        if "error" in self._box:
            raise RuntimeError(self._box["error"])

    def _serve(self, cache_dir: Path, use_pool: bool,
               workers: Optional[int]) -> None:
        async def main() -> None:
            try:
                service = CompileService(cache_dir=cache_dir,
                                         use_pool=use_pool,
                                         workers=workers)
                server = ReproServer(service, host="127.0.0.1", port=0)
                await server.start()
            except Exception as exc:               # noqa: BLE001
                self._box["error"] = repr(exc)
                self._ready.set()
                return
            self._box["port"] = server.port
            self._ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self._box["port"]

    def shutdown(self) -> None:
        try:
            with ServeClient(port=self.port) as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=60)


def check_identity(port: int, seed: int) -> Dict[str, object]:
    """Serve responses vs direct ``repro.api`` calls, byte for byte.

    The wire adds one JSON round trip, so the direct results are
    JSON-normalized before comparison -- any value the trip would
    change (it shouldn't) counts as a mismatch.
    """
    from repro.api import compile_kernel
    from repro.dspstone import kernel
    from repro.serve.traffic import HOT_KERNELS

    checked = 0
    mismatches: List[str] = []
    with ServeClient(port=port) as client:
        for name in HOT_KERNELS:
            for target in ("tc25", "m56", "risc16", "asip"):
                direct = compile_kernel(name, target=target)
                served = client.compile(kernel=name, target=target)
                checked += 1
                if served["result"]["listing"] != direct.listing() \
                        or served["result"]["words"] != direct.words():
                    mismatches.append(f"compile:{name}/{target}")
            inputs = kernel(name).inputs(seed=seed)
            direct_out, direct_cycles = \
                compile_kernel(name).run(inputs)
            served = client.simulate(kernel=name, inputs=inputs,
                                     sim="jit")
            checked += 1
            if served["result"]["outputs"] != json.loads(
                    json.dumps(direct_out)) \
                    or served["result"]["cycles"] != direct_cycles:
                mismatches.append(f"simulate:{name}")
    return {"checked": checked, "identical": not mismatches,
            "mismatches": mismatches}


def measure(requests: int, cold_programs: int, connections: int,
            cache_dir: Path, use_pool: bool,
            workers: Optional[int], seed: int) -> Dict[str, object]:
    """Two passes of the identical workload against one server."""
    server = LiveServer(cache_dir, use_pool, workers)
    try:
        config = TrafficConfig(requests=requests,
                               cold_programs=cold_programs,
                               connections=connections, seed=seed)
        items = build_requests(config)
        cold = drive("127.0.0.1", server.port, items,
                     connections=connections)
        warm = drive("127.0.0.1", server.port, items,
                     connections=connections)
        identity = check_identity(server.port, seed)
    finally:
        server.shutdown()

    warm_counts = warm.served_by_counts()
    return {
        "requests": requests,
        "cold_programs": cold_programs,
        "connections": connections,
        "seed": seed,
        "pool": "process" if use_pool else "serial",
        "cold_pass": cold.to_json(),
        "warm_pass": warm.to_json(),
        "recompiles_cold": cold.recompiles(),
        "warm_farm_dispatches": warm_counts.get("farm", 0),
        "identity": identity,
    }


def render(report: Dict[str, object]) -> str:
    lines = [f"{'pass':6s} {'req/s':>8s} {'p50 ms':>8s} {'p95 ms':>8s} "
             f"{'farm':>5s} {'cache':>6s} {'coal':>5s}",
             "-" * 52]
    for label in ("cold_pass", "warm_pass"):
        row = report[label]
        served = row["served_by"]
        lines.append(
            f"{label.split('_')[0]:6s} "
            f"{row['requests_per_second']:>8.1f} "
            f"{row['latency_p50_ms']:>8.2f} "
            f"{row['latency_p95_ms']:>8.2f} "
            f"{served.get('farm', 0):>5d} {served.get('cache', 0):>6d} "
            f"{served.get('coalesced', 0):>5d}")
    lines.append("-" * 52)
    lines.append(f"recompiles (cold pass): {report['recompiles_cold']}")
    lines.append(f"farm dispatches on hot repeat pass: "
                 f"{report['warm_farm_dispatches']}")
    identity = report["identity"]
    lines.append(f"identity vs direct repro.api: "
                 f"{identity['checked']} checked, "
                 + ("all identical" if identity["identical"]
                    else f"MISMATCHES: {identity['mismatches']}"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke: {QUICK_REQUESTS} requests, "
                             f"{QUICK_COLD} cold programs")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--cold-programs", type=int, default=None)
    parser.add_argument("--connections", type=int,
                        default=CONNECTIONS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--serial", action="store_true",
                        help="serve without a process pool")
    parser.add_argument("--jobs", type=int, default=None,
                        help="farm worker processes")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent cache dir (default: a "
                             "throwaway temp dir, so every run starts "
                             "cold)")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_SERVE.json"),
                        help="where the report JSON is written")
    args = parser.parse_args(argv)

    requests = args.requests or (QUICK_REQUESTS if args.quick
                                 else REQUESTS)
    cold_programs = args.cold_programs if args.cold_programs is not None \
        else (QUICK_COLD if args.quick else COLD_PROGRAMS)

    scratch = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="bench-serve-")
        cache_dir = Path(scratch) / "cache"
    try:
        report = measure(requests, cold_programs, args.connections,
                         cache_dir, use_pool=not args.serial,
                         workers=args.jobs, seed=args.seed)
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if report["recompiles_cold"] != 0:
        print("FAIL: repeated artifact cells recompiled during the "
              "cold pass", file=sys.stderr)
        return 1
    if report["warm_farm_dispatches"] != 0:
        print("FAIL: hot repeat pass dispatched to the farm",
              file=sys.stderr)
        return 1
    if not report["identity"]["identical"]:
        print("FAIL: serve results diverge from direct repro.api",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
