"""Sec. 3.1: the DSPStone overhead claim.

"According to the results of this DSPStone benchmark project, overhead
of compiled code (in terms of code size and clock cycles) typically
ranges between 2 and 8."  This bench measures exactly that for our
conventional compiler: size and cycle overhead relative to hand
assembly across the ten kernels, and checks that the loop kernels land
in (or above) the reported band while the retargetable pipeline closes
most of the gap.

Run:  pytest benchmarks/bench_dspstone_overhead.py --benchmark-only -s
or :  python benchmarks/bench_dspstone_overhead.py
"""

from repro.evalx.table1 import compute_table1

LOOP_KERNELS = ("n_real_updates", "n_complex_updates", "fir",
                "iir_biquad_N_sections", "convolution")


def measure():
    return compute_table1(seeds=1)


def report(rows) -> str:
    lines = [f"{'kernel':26s} {'size x':>7s} {'cycle x':>8s} "
             f"{'rec cyc x':>10s}",
             "-" * 56]
    for row in rows:
        size_factor = row.baseline_words / row.hand_words
        cycle_factor = row.baseline_cycles / max(row.hand_cycles, 1)
        record_factor = row.record_cycles / max(row.hand_cycles, 1)
        lines.append(f"{row.kernel:26s} {size_factor:>7.1f} "
                     f"{cycle_factor:>8.1f} {record_factor:>10.1f}")
    loop_cycles = sorted(
        row.baseline_cycles / max(row.hand_cycles, 1)
        for row in rows if row.kernel in LOOP_KERNELS)
    lines.append("-" * 56)
    lines.append(f"loop-kernel cycle overhead: min {loop_cycles[0]:.1f}, "
                 f"median {loop_cycles[len(loop_cycles) // 2]:.1f}, "
                 f"max {loop_cycles[-1]:.1f}  (paper: 'typically 2..8')")
    return "\n".join(lines)


def test_dspstone_overhead(benchmark):
    rows = benchmark(measure)
    print()
    print(report(rows))

    by_name = {row.kernel: row for row in rows}
    factors = [by_name[name].baseline_cycles
               / max(by_name[name].hand_cycles, 1)
               for name in LOOP_KERNELS]
    assert all(factor >= 2.0 for factor in factors)
    factors.sort()
    assert 2.0 <= factors[len(factors) // 2] <= 10.0
    # the retargetable pipeline closes most of the gap
    for name in LOOP_KERNELS:
        row = by_name[name]
        assert row.record_cycles <= row.baseline_cycles / 2


if __name__ == "__main__":
    print(report(measure()))
