"""Sec. 3.2 requirement 4: compilers that calculate their code's speed.

The paper argues real-time constraints should be checked by the
compiler, not by "error-prone, time-consuming simulations".  This bench
runs the static cycle analysis over every kernel x compiler x target
and proves the predictions *exact* against simulation -- then times the
analysis itself (it must be cheap enough to run on every compile).

Run:  pytest benchmarks/bench_timing.py --benchmark-only -s
or :  python benchmarks/bench_timing.py
"""

from repro.codegen.timing import predict_cycles
from repro.dspstone import all_kernels
from repro.evalx.farm import CompileJob, compile_many
from repro.sim.harness import run_compiled

# The kernel x compiler x target matrix, one farm job per cell (the
# "hand" producer is the checked-in reference assembly, not a compile,
# but the farm serves it through the same interface).
_CELLS = (("record", "tc25"), ("baseline", "tc25"), ("hand", "tc25"),
          ("record", "m56"), ("record", "risc16"))


def build_everything(parallel=None):
    specs = list(all_kernels())
    jobs = [CompileJob(kernel=spec.name, compiler=compiler, target=target)
            for spec in specs
            for compiler, target in _CELLS]
    results = compile_many(jobs, parallel=parallel)
    by_name = {spec.name: spec for spec in specs}
    compiled = []
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"{result.job.kernel}/{result.job.compiler}/"
                f"{result.job.target}: [{result.error_type}] "
                f"{result.error}")
        compiled.append((by_name[result.job.kernel], result.compiled))
    return compiled


def predict_all(compiled):
    return [predict_cycles(entry.code).total_cycles
            for _spec, entry in compiled]


def report(compiled, predictions) -> str:
    lines = [f"{'kernel':26s} {'producer':10s} {'target':8s} "
             f"{'predicted':>10s} {'simulated':>10s}",
             "-" * 70]
    exact = 0
    for (spec, entry), predicted in zip(compiled, predictions):
        _outputs, state = run_compiled(entry, spec.inputs(seed=0))
        match = predicted == state.cycles
        exact += match
        lines.append(
            f"{spec.name:26.26s} {entry.compiler:10s} "
            f"{entry.target.name:8.8s} {predicted:>10d} "
            f"{state.cycles:>10d}{'' if match else '   MISMATCH'}")
    lines.append("-" * 70)
    lines.append(f"{exact}/{len(compiled)} predictions exact")
    return "\n".join(lines)


def test_timing(benchmark):
    compiled = build_everything()
    predictions = benchmark(predict_all, compiled)
    text = report(compiled, predictions)
    print()
    print(text.splitlines()[-1])      # the tally; full table is long
    assert text.splitlines()[-1] == \
        f"{len(compiled)}/{len(compiled)} predictions exact"


if __name__ == "__main__":
    compiled = build_everything()
    print(report(compiled, predict_all(compiled)))
