"""Sec. 3.2 requirement 4: compilers that calculate their code's speed.

The paper argues real-time constraints should be checked by the
compiler, not by "error-prone, time-consuming simulations".  This bench
runs the static cycle analysis over every kernel x compiler x target
and proves the predictions *exact* against simulation -- then times the
analysis itself (it must be cheap enough to run on every compile).

Run:  pytest benchmarks/bench_timing.py --benchmark-only -s
or :  python benchmarks/bench_timing.py
"""

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.codegen.timing import predict_cycles
from repro.dspstone import all_kernels, hand_reference
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def build_everything():
    compiled = []
    tc25 = TC25()
    for spec in all_kernels():
        compiled.append((spec, RecordCompiler(tc25).compile(spec.program)))
        compiled.append((spec,
                         BaselineCompiler(tc25).compile(spec.program)))
        compiled.append((spec, hand_reference(spec.name, tc25)))
        compiled.append((spec, RecordCompiler(M56()).compile(spec.program)))
        compiled.append((spec,
                         RecordCompiler(Risc16()).compile(spec.program)))
    return compiled


def predict_all(compiled):
    return [predict_cycles(entry.code).total_cycles
            for _spec, entry in compiled]


def report(compiled, predictions) -> str:
    lines = [f"{'kernel':26s} {'producer':10s} {'target':8s} "
             f"{'predicted':>10s} {'simulated':>10s}",
             "-" * 70]
    exact = 0
    for (spec, entry), predicted in zip(compiled, predictions):
        _outputs, state = run_compiled(entry, spec.inputs(seed=0))
        match = predicted == state.cycles
        exact += match
        lines.append(
            f"{spec.name:26.26s} {entry.compiler:10s} "
            f"{entry.target.name:8.8s} {predicted:>10d} "
            f"{state.cycles:>10d}{'' if match else '   MISMATCH'}")
    lines.append("-" * 70)
    lines.append(f"{exact}/{len(compiled)} predictions exact")
    return "\n".join(lines)


def test_timing(benchmark):
    compiled = build_everything()
    predictions = benchmark(predict_all, compiled)
    text = report(compiled, predictions)
    print()
    print(text.splitlines()[-1])      # the tally; full table is long
    assert text.splitlines()[-1] == \
        f"{len(compiled)}/{len(compiled)} predictions exact"


if __name__ == "__main__":
    compiled = build_everything()
    print(report(compiled, predict_all(compiled)))
