"""Fig. 4: a data-flow graph and an instruction-pattern library.

The figure shows a small DFG and five instruction patterns: move from
memory to register, load constant into register, add immediate, multiply
immediate with memory direct, and "add immediate to memory addressed by
the product of two registers".  This bench builds that pattern library
as a tree grammar, labels the figure's trees with the BURS matcher and
reports per-pattern match counts.

Run:  pytest benchmarks/bench_fig4_patterns.py --benchmark-only -s
or :  python benchmarks/bench_fig4_patterns.py
"""

from repro.codegen.burg import BurgMatcher
from repro.codegen.grammar import Cost, Nt, Pat, Rule, Term, TreeGrammar
from repro.ir.trees import Tree


def figure4_grammar() -> TreeGrammar:
    def accept(nonterm):
        def emit(ctx, args):
            return nonterm
        return emit

    rules = [
        Rule("reg", Term("ref"), Cost(1, 1), emit=accept("reg"),
             name="move mem->reg"),
        Rule("reg", Term("const"), Cost(1, 1), emit=accept("reg"),
             name="load constant"),
        Rule("reg", Pat("add", (Nt("reg"), Term("const"))), Cost(1, 1),
             emit=accept("reg"), name="add immediate"),
        Rule("reg", Pat("mul", (Term("ref"), Term("const"))),
             Cost(1, 1), emit=accept("reg"),
             name="multiply imm with mem direct"),
        Rule("reg", Pat("add", (Pat("mul", (Nt("reg"), Nt("reg"))),
                                Term("const"))),
             Cost(1, 1), emit=accept("reg"),
             name="add imm to mem addressed by product"),
        # decomposition fallbacks (the figure's "or compose it" side)
        Rule("reg", Pat("mul", (Nt("reg"), Nt("reg"))), Cost(1, 1),
             emit=accept("reg"), name="multiply registers"),
        Rule("reg", Pat("add", (Nt("reg"), Nt("reg"))), Cost(1, 1),
             emit=accept("reg"), name="add registers"),
    ]
    return TreeGrammar("figure4", rules, {"reg": None})


def figure4_trees():
    indexed = Tree.compute(
        "add",
        Tree.compute("mul", Tree.ref("p"), Tree.ref("q")),
        Tree.const(9))
    scaled = Tree.compute(
        "add",
        Tree.compute("mul", Tree.ref("x"), Tree.const(5)),
        Tree.const(7))
    return indexed, scaled


def label_all():
    grammar = figure4_grammar()
    matcher = BurgMatcher(grammar)
    results = {}
    for name, tree in zip(("indexed", "scaled"), figure4_trees()):
        cost = matcher.cover_cost(tree, "reg")
        rules = [rule.name for rule in matcher.cover_rules(tree, "reg")]
        results[name] = (tree, cost, rules)
    return results


def report(results) -> str:
    lines = ["Fig. 4 pattern library applied to the figure's trees:"]
    for name, (tree, cost, rules) in results.items():
        lines.append(f"  {name}: {tree}")
        lines.append(f"    optimal cover = {cost.words} patterns:")
        for rule in rules:
            lines.append(f"      - {rule}")
    return "\n".join(lines)


def test_fig4_patterns(benchmark):
    results = benchmark(label_all)
    print()
    print(report(results))

    _tree, cost, rules = results["indexed"]
    # big composite pattern wins: 2 loads + the product-addressed add
    assert cost.words == 3
    assert "add imm to mem addressed by product" in rules
    _tree, cost, rules = results["scaled"]
    # mul-imm-with-mem-direct + add-immediate = 2 patterns
    assert cost.words == 2
    assert "multiply imm with mem direct" in rules


if __name__ == "__main__":
    print(report(label_all()))
