"""Ablation of the Sec. 3.3 / 4.3.4 optimizations.

DESIGN.md calls out five design choices; this bench toggles each of
them independently and reports the code-size delta over the whole
DSPStone suite:

- on the TC25: algebraic variants, accumulator promotion, the RPT/MAC
  idiom, combo-instruction peepholes, Liao mode minimization;
- on the M56: parallel-move compaction (none/greedy/optimal), memory
  bank assignment (single/greedy/anneal) and offset assignment
  (absolute/naive/liao).

Every variant is verified bit-exact before being counted.

Run:  pytest benchmarks/bench_ablation_opts.py --benchmark-only -s
or :  python benchmarks/bench_ablation_opts.py
"""

from dataclasses import replace

from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.dspstone import all_kernels
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)

TC25_ABLATIONS = [
    ("full pipeline", {}),
    ("+ MACD fusion (beyond 1997)", {"fuse_shift_idioms": True}),
    ("- algebraic variants", {"algebraic": False}),
    ("- accumulator promotion", {"promote_accumulators": False}),
    ("- repeat/MAC idiom", {"repeat_idioms": False}),
    ("- combo peepholes", {"peephole": False}),
    ("- mode minimization", {"minimize_modes": False}),
]

M56_ABLATIONS = [
    ("full pipeline", {}),
    ("compaction: none", {"compaction": "none"}),
    ("compaction: optimal", {"compaction": "optimal"}),
    ("banks: single", {"bank_assignment": "single"}),
    ("banks: anneal", {"bank_assignment": "anneal"}),
    ("offsets: absolute", {"offset_assignment": "absolute"}),
    ("offsets: naive", {"offset_assignment": "naive"}),
]


def total_words(target, overrides) -> int:
    options = replace(RecordOptions(), **overrides)
    total = 0
    for spec in all_kernels():
        compiled = RecordCompiler(target, options).compile(spec.program)
        reference = spec.program.initial_environment()
        inputs = spec.inputs(seed=0)
        for key, value in inputs.items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, FPC)
        outputs, _ = run_compiled(compiled, inputs)
        for symbol in spec.program.symbols.values():
            if symbol.role == "output":
                assert outputs[symbol.name] == reference[symbol.name], \
                    (spec.name, overrides)
        total += compiled.words()
    return total


def sweep():
    tc25 = TC25()
    m56 = M56()
    return (
        [(label, total_words(tc25, overrides))
         for label, overrides in TC25_ABLATIONS],
        [(label, total_words(m56, overrides))
         for label, overrides in M56_ABLATIONS],
    )


def report(tc25_rows, m56_rows) -> str:
    lines = ["TC25 ablation (total words over all 10 kernels):"]
    base = tc25_rows[0][1]
    for label, words in tc25_rows:
        delta = f"{words - base:+d}" if label != "full pipeline" else ""
        lines.append(f"  {label:28s} {words:5d} {delta}")
    lines.append("")
    lines.append("M56 ablation (total words over all 10 kernels):")
    base = m56_rows[0][1]
    for label, words in m56_rows:
        delta = f"{words - base:+d}" if label != "full pipeline" else ""
        lines.append(f"  {label:28s} {words:5d} {delta}")
    return "\n".join(lines)


def test_ablation(benchmark):
    tc25_rows, m56_rows = benchmark.pedantic(sweep, iterations=1,
                                             rounds=1)
    print()
    print(report(tc25_rows, m56_rows))

    tc25_full = tc25_rows[0][1]
    for label, words in tc25_rows[1:]:
        if label.startswith("+"):
            assert words <= tc25_full, label     # extensions only help
        else:
            assert words >= tc25_full, label
    # the headline levers each cost real size when removed
    deltas = {label: words - tc25_full for label, words in tc25_rows}
    assert deltas["- accumulator promotion"] > 0
    assert deltas["- repeat/MAC idiom"] > 0
    assert deltas["- combo peepholes"] > 0

    m56_full = m56_rows[0][1]
    by_label = dict(m56_rows)
    assert by_label["compaction: none"] > m56_full
    assert by_label["compaction: optimal"] <= by_label["compaction: none"]
    assert by_label["banks: single"] >= m56_full
    assert by_label["offsets: absolute"] >= m56_full


if __name__ == "__main__":
    print(report(*sweep()))
