"""Simulator benchmark: the three-tier stack on the DSPStone matrix.

PR 2 made compilation fast; the evaluation harnesses then spend their
time *executing* compiled kernels (Table 1 cycle counts, DSPStone
bit-exactness sweeps, the selftest fault corpus).  This bench measures
what each simulator tier buys on the full DSPStone kernel x target
matrix -- the reference interpreter (``Machine``), the
translation-caching closure simulator (``FastMachine``) and the
source-generating jit (``JitMachine``) -- and proves the stack
transparent:

- **equivalence** -- for every (kernel, producer, seed) the read-back
  environment and the cycle count must be identical across all three
  tiers (checked on every run, quick or full; any divergence fails the
  bench);
- **speed** -- pure ``run()`` wall-clock (state setup untimed, decode
  and translation warmed); the full run enforces the jit tier's
  aggregate floors: >= 3x over the fast simulator and >= 10x over the
  reference interpreter;
- **caching** -- after the timed warmup, every jit translation must be
  an in-process cache hit (the warm hit rate the report publishes).

Producers per kernel: the hand-written TC25 reference, the baseline
compiler on TC25, and the RECORD pipeline on tc25/m56/risc16/asip.
Results land in ``BENCH_SIM.json`` (format v2) at the repository root.

Run:  python benchmarks/bench_sim_speed.py            (full matrix)
or :  python benchmarks/bench_sim_speed.py --quick    (CI smoke)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels, hand_reference
from repro.sim.decode import clear_decode_cache, decode_cache_stats
from repro.sim.fastmachine import FastMachine
from repro.sim.harness import load_environment, read_environment
from repro.sim.jit import JitMachine, jit_cache_stats
from repro.sim.machine import Machine
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

ROOT = Path(__file__).resolve().parent.parent

SEEDS = (0, 1, 2)
#: jit aggregate floors, enforced by the full (non --quick) run.
JIT_VS_FAST_FLOOR = 3.0
JIT_VS_REFERENCE_FLOOR = 10.0

#: tier name -> machine class, slowest first (report column order).
TIERS = (("reference", Machine), ("fast", FastMachine),
         ("jit", JitMachine))


def build_cells(kernels: List[str]) -> List[Tuple[str, str, object, object]]:
    """(kernel, producer, compiled, spec) for the full producer matrix."""
    tc25 = TC25()
    targets = [tc25, M56(), Risc16(), Asip(AsipParams())]
    specs = {spec.name: spec for spec in all_kernels()}
    cells = []
    for name in kernels:
        spec = specs[name]
        cells.append((name, "hand/tc25",
                      hand_reference(name, tc25), spec))
        cells.append((name, "baseline/tc25",
                      BaselineCompiler(tc25).compile(spec.program), spec))
        for target in targets:
            label = target.name.split("(")[0]
            cells.append((name, f"record/{label}",
                          RecordCompiler(target).compile(spec.program),
                          spec))
    return cells


def _loaded_states(compiled, inputs, count: int):
    states = []
    for _ in range(count):
        state = compiled.target.initial_state()
        load_environment(compiled, inputs, state)
        states.append(state)
    return states


def check_equivalence(compiled, spec) -> Tuple[bool, List[str]]:
    """All tiers must produce identical environments and cycle counts."""
    problems = []
    for seed in SEEDS:
        inputs = spec.inputs(seed=seed)
        states = _loaded_states(compiled, inputs, len(TIERS))
        environments = []
        cycles = []
        for (tier_name, machine_cls), state in zip(TIERS, states):
            machine_cls(compiled.target).run(compiled.code, state)
            environments.append((tier_name,
                                 read_environment(compiled, state)))
            cycles.append((tier_name, state.cycles))
        _, reference_env = environments[0]
        for tier_name, env in environments[1:]:
            if env != reference_env:
                problems.append(
                    f"environment mismatch reference vs {tier_name} "
                    f"(seed {seed})")
        _, reference_cycles = cycles[0]
        for tier_name, count in cycles[1:]:
            if count != reference_cycles:
                problems.append(
                    f"cycle mismatch reference vs {tier_name} "
                    f"(seed {seed}): {reference_cycles} vs {count}")
    return not problems, problems


def time_cell(compiled, spec, reps: int) -> Dict[str, float]:
    """Pure run() wall-clock per tier; setup untimed, caches warmed."""
    inputs = spec.inputs(seed=0)
    machines = {name: cls(compiled.target) for name, cls in TIERS}
    # Warm the decode cache and the jit translation so steady-state
    # execution is what's timed.
    for machine in machines.values():
        machine.run(compiled.code,
                    _loaded_states(compiled, inputs, 1)[0])

    walls: Dict[str, float] = {}
    for name, machine in machines.items():
        states = _loaded_states(compiled, inputs, reps)
        started = perf_counter()
        for state in states:
            machine.run(compiled.code, state)
        walls[name] = perf_counter() - started
    return walls


def measure(kernels: Optional[List[str]] = None,
            reps: int = 50) -> Dict[str, object]:
    """Equivalence-check and time the whole matrix; build the report."""
    if kernels is None:
        kernels = [spec.name for spec in all_kernels()]
    clear_decode_cache()
    cells = build_cells(kernels)

    rows = []
    mismatches: List[str] = []
    totals = {name: 0.0 for name, _cls in TIERS}
    for name, producer, compiled, spec in cells:
        identical, problems = check_equivalence(compiled, spec)
        if not identical:
            mismatches.extend(f"{name}/{producer}: {p}" for p in problems)
        walls = time_cell(compiled, spec, reps)
        for tier, wall in walls.items():
            totals[tier] += wall
        rows.append({
            "kernel": name,
            "producer": producer,
            "identical": identical,
            "reference_seconds": round(walls["reference"], 6),
            "fast_seconds": round(walls["fast"], 6),
            "jit_seconds": round(walls["jit"], 6),
            "jit_vs_fast": round(walls["fast"] / walls["jit"], 3)
            if walls["jit"] else 0.0,
            "jit_vs_reference": round(
                walls["reference"] / walls["jit"], 3)
            if walls["jit"] else 0.0,
        })

    jit_stats = jit_cache_stats()
    translations = jit_stats["hits"] + jit_stats["misses"]
    sources = (jit_stats["source_cache_hits"]
               + jit_stats["source_cache_misses"])
    return {
        "format": 2,
        "kernels": kernels,
        "cells": len(cells),
        "reps_per_cell": reps,
        "seeds_checked": list(SEEDS),
        "identical_output": not mismatches,
        "mismatches": mismatches,
        "reference_seconds": round(totals["reference"], 6),
        "fast_seconds": round(totals["fast"], 6),
        "jit_seconds": round(totals["jit"], 6),
        "fast_vs_reference": round(
            totals["reference"] / totals["fast"], 3)
        if totals["fast"] else 0.0,
        "jit_vs_fast": round(totals["fast"] / totals["jit"], 3)
        if totals["jit"] else 0.0,
        "jit_vs_reference": round(
            totals["reference"] / totals["jit"], 3)
        if totals["jit"] else 0.0,
        "decode_cache": decode_cache_stats(),
        "jit": {
            **jit_stats,
            "warm_hit_rate": (round(jit_stats["hits"] / translations, 4)
                              if translations else 0.0),
            "source_cache_hit_rate": (
                round(jit_stats["source_cache_hits"] / sources, 4)
                if sources else 0.0),
        },
        "rows": rows,
    }


def render(report: Dict[str, object]) -> str:
    lines = [f"{'kernel':22s} {'producer':15s} {'ref (ms)':>9s} "
             f"{'fast (ms)':>9s} {'jit (ms)':>9s} {'vs fast':>8s} "
             f"{'vs ref':>8s}",
             "-" * 86]
    for row in report["rows"]:
        lines.append(
            f"{row['kernel']:22s} {row['producer']:15s} "
            f"{row['reference_seconds'] * 1000:>9.2f} "
            f"{row['fast_seconds'] * 1000:>9.2f} "
            f"{row['jit_seconds'] * 1000:>9.2f} "
            f"{row['jit_vs_fast']:>7.2f}x "
            f"{row['jit_vs_reference']:>7.2f}x"
            + ("" if row["identical"] else "  MISMATCH"))
    lines.append("-" * 86)
    decode = report["decode_cache"]
    jit = report["jit"]
    lines.append(
        f"aggregate: jit {report['jit_vs_fast']:.2f}x over fast, "
        f"{report['jit_vs_reference']:.2f}x over reference "
        f"(fast alone: {report['fast_vs_reference']:.2f}x) over "
        f"{report['cells']} cells x {report['reps_per_cell']} runs")
    lines.append(
        f"decode cache: {decode['hits']} hits, {decode['misses']} "
        f"misses, {decode['fallbacks']} fallbacks; jit: "
        f"{jit['blocks_emitted']} blocks emitted "
        f"({jit['loop_blocks']} fused loops), "
        f"{jit['blocks_closure']} closure blocks, "
        f"{jit['fallbacks']} program fallbacks, warm hit rate "
        f"{jit['warm_hit_rate']:.0%}, source cache "
        f"{jit['source_cache_hits']} hits / "
        f"{jit['source_cache_misses']} misses")
    lines.append("all tiers identical (environments and cycles): "
                 + ("yes" if report["identical_output"] else
                    "NO -- " + "; ".join(report["mismatches"])))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 3 kernels, few reps, no speedup "
                             "floors (timing is noisy on shared runners);"
                             " cross-tier equivalence is still enforced")
    parser.add_argument("--output", default=str(ROOT / "BENCH_SIM.json"),
                        help="where the report JSON is written")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="use the persistent artifact cache for jit "
                             "source (default on: a warm .repro-cache/ "
                             "skips code generation; --no-cache forces "
                             "cold translation)")
    args = parser.parse_args(argv)

    import repro.cache
    if args.cache:
        repro.cache.configure(repro.cache.default_cache_dir())
    else:
        repro.cache.configure(None)

    if args.quick:
        report = measure(["real_update", "fir", "convolution"], reps=5)
    else:
        report = measure()
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["identical_output"]:
        print("FAIL: simulator tiers diverged", file=sys.stderr)
        return 1
    if not args.quick:
        if report["jit_vs_fast"] < JIT_VS_FAST_FLOOR:
            print(f"FAIL: expected >= {JIT_VS_FAST_FLOOR}x jit-vs-fast "
                  f"speedup, got {report['jit_vs_fast']:.2f}x",
                  file=sys.stderr)
            return 1
        if report["jit_vs_reference"] < JIT_VS_REFERENCE_FLOOR:
            print(f"FAIL: expected >= {JIT_VS_REFERENCE_FLOOR}x "
                  f"jit-vs-reference speedup, got "
                  f"{report['jit_vs_reference']:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
