"""Simulator benchmark: translation caching vs. the reference machine.

PR 2 made compilation fast; the evaluation harnesses then spend their
time *executing* compiled kernels (Table 1 cycle counts, DSPStone
bit-exactness sweeps, the selftest fault corpus).  This bench measures
what the translation-caching simulator (`repro.sim.fastmachine`) buys
over the reference interpreter on the full DSPStone kernel x target
matrix -- and proves the caches transparent:

- **equivalence** -- for every (kernel, producer, seed) the read-back
  environment and the cycle count must be identical in both modes
  (checked on every run, quick or full; any divergence fails the bench);
- **speed** -- pure ``run()`` wall-clock (state setup untimed, decode
  warmed) for the reference ``Machine`` vs. the ``FastMachine``; the
  full run enforces >= 3x aggregate speedup.

Producers per kernel: the hand-written TC25 reference, the baseline
compiler on TC25, and the RECORD pipeline on tc25/m56/risc16/asip.
Results land in ``BENCH_SIM.json`` at the repository root.

Run:  python benchmarks/bench_sim_speed.py            (full matrix)
or :  python benchmarks/bench_sim_speed.py --quick    (CI smoke)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels, hand_reference
from repro.sim.decode import clear_decode_cache, decode_cache_stats
from repro.sim.fastmachine import FastMachine
from repro.sim.harness import load_environment, read_environment
from repro.sim.machine import Machine
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

ROOT = Path(__file__).resolve().parent.parent

SEEDS = (0, 1, 2)
SPEEDUP_FLOOR = 3.0


def build_cells(kernels: List[str]) -> List[Tuple[str, str, object, object]]:
    """(kernel, producer, compiled, spec) for the full producer matrix."""
    tc25 = TC25()
    targets = [tc25, M56(), Risc16(), Asip(AsipParams())]
    specs = {spec.name: spec for spec in all_kernels()}
    cells = []
    for name in kernels:
        spec = specs[name]
        cells.append((name, "hand/tc25",
                      hand_reference(name, tc25), spec))
        cells.append((name, "baseline/tc25",
                      BaselineCompiler(tc25).compile(spec.program), spec))
        for target in targets:
            label = target.name.split("(")[0]
            cells.append((name, f"record/{label}",
                          RecordCompiler(target).compile(spec.program),
                          spec))
    return cells


def _loaded_states(compiled, inputs, count: int):
    states = []
    for _ in range(count):
        state = compiled.target.initial_state()
        load_environment(compiled, inputs, state)
        states.append(state)
    return states


def check_equivalence(compiled, spec) -> Tuple[bool, List[str]]:
    """Both modes must produce identical environments and cycle counts."""
    problems = []
    for seed in SEEDS:
        inputs = spec.inputs(seed=seed)
        ref_state, fast_state = _loaded_states(compiled, inputs, 2)
        Machine(compiled.target).run(compiled.code, ref_state)
        FastMachine(compiled.target).run(compiled.code, fast_state)
        if read_environment(compiled, ref_state) \
                != read_environment(compiled, fast_state):
            problems.append(f"environment mismatch (seed {seed})")
        if ref_state.cycles != fast_state.cycles:
            problems.append(
                f"cycle mismatch (seed {seed}): "
                f"{ref_state.cycles} vs {fast_state.cycles}")
    return not problems, problems


def time_cell(compiled, spec, reps: int) -> Tuple[float, float]:
    """Pure run() wall-clock for (reference, fast); setup untimed."""
    inputs = spec.inputs(seed=0)
    reference = Machine(compiled.target)
    fast = FastMachine(compiled.target)
    # Warm the decode cache so steady-state execution is what's timed.
    fast.run(compiled.code, _loaded_states(compiled, inputs, 1)[0])

    states = _loaded_states(compiled, inputs, reps)
    started = perf_counter()
    for state in states:
        reference.run(compiled.code, state)
    reference_wall = perf_counter() - started

    states = _loaded_states(compiled, inputs, reps)
    started = perf_counter()
    for state in states:
        fast.run(compiled.code, state)
    fast_wall = perf_counter() - started
    return reference_wall, fast_wall


def measure(kernels: Optional[List[str]] = None,
            reps: int = 50) -> Dict[str, object]:
    """Equivalence-check and time the whole matrix; build the report."""
    if kernels is None:
        kernels = [spec.name for spec in all_kernels()]
    clear_decode_cache()
    cells = build_cells(kernels)

    rows = []
    mismatches: List[str] = []
    total_reference = total_fast = 0.0
    for name, producer, compiled, spec in cells:
        identical, problems = check_equivalence(compiled, spec)
        if not identical:
            mismatches.extend(f"{name}/{producer}: {p}" for p in problems)
        reference_wall, fast_wall = time_cell(compiled, spec, reps)
        total_reference += reference_wall
        total_fast += fast_wall
        rows.append({
            "kernel": name,
            "producer": producer,
            "identical": identical,
            "reference_seconds": round(reference_wall, 6),
            "fast_seconds": round(fast_wall, 6),
            "speedup": round(reference_wall / fast_wall, 3)
            if fast_wall else 0.0,
        })
    return {
        "kernels": kernels,
        "cells": len(cells),
        "reps_per_cell": reps,
        "seeds_checked": list(SEEDS),
        "identical_output": not mismatches,
        "mismatches": mismatches,
        "reference_seconds": round(total_reference, 6),
        "fast_seconds": round(total_fast, 6),
        "speedup": round(total_reference / total_fast, 3)
        if total_fast else 0.0,
        "decode_cache": decode_cache_stats(),
        "rows": rows,
    }


def render(report: Dict[str, object]) -> str:
    lines = [f"{'kernel':22s} {'producer':15s} {'ref (ms)':>9s} "
             f"{'fast (ms)':>9s} {'speedup':>8s}",
             "-" * 68]
    for row in report["rows"]:
        lines.append(
            f"{row['kernel']:22s} {row['producer']:15s} "
            f"{row['reference_seconds'] * 1000:>9.2f} "
            f"{row['fast_seconds'] * 1000:>9.2f} "
            f"{row['speedup']:>7.2f}x"
            + ("" if row["identical"] else "  MISMATCH"))
    lines.append("-" * 68)
    stats = report["decode_cache"]
    lines.append(
        f"aggregate: {report['speedup']:.2f}x over {report['cells']} "
        f"cells x {report['reps_per_cell']} runs "
        f"(decode cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['fallbacks']} fallbacks)")
    lines.append("fast == reference (environments and cycles): "
                 + ("yes" if report["identical_output"] else
                    "NO -- " + "; ".join(report["mismatches"])))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 3 kernels, few reps, no speedup "
                             "floor (timing is noisy on shared runners);"
                             " equivalence is still enforced")
    parser.add_argument("--output", default=str(ROOT / "BENCH_SIM.json"),
                        help="where the report JSON is written")
    args = parser.parse_args(argv)

    if args.quick:
        report = measure(["real_update", "fir", "convolution"], reps=5)
    else:
        report = measure()
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["identical_output"]:
        print("FAIL: fast simulator diverged from the reference",
              file=sys.stderr)
        return 1
    if not args.quick and report["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: expected >= {SPEEDUP_FLOOR}x fast-vs-reference "
              f"speedup, got {report['speedup']:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
