"""Fig. 2: the global view of RECORD, stage by stage.

The figure shows the two converging flows: the processor model enters
through instruction-set extraction and pattern-matcher generation, the
DFL program through parsing and flow-graph generation; instruction
selection, compaction and address assignment meet in the middle and
executable code comes out.  This bench drives both flows end to end
(netlist-derived target AND hand-modelled TC25) and times the complete
compilation, printing each stage's artifact sizes.

Run:  pytest benchmarks/bench_fig2_pipeline.py --benchmark-only -s
or :  python benchmarks/bench_fig2_pipeline.py
"""

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import analyze, compile_dfl, parse
from repro.dspstone import kernel
from repro.ir.trees import decompose
from repro.ir.program import Block
from repro.ise.examples import miniacc_netlist
from repro.ise.extractor import extract
from repro.ise.patterns import NetlistTarget
from repro.sim.harness import run_compiled
from repro.targets.tc25 import TC25


def full_pipeline():
    spec = kernel("fir")
    program = spec.program
    compiled = RecordCompiler(TC25()).compile(program)
    outputs, state = run_compiled(compiled, spec.inputs(seed=0))
    return compiled, outputs, state


def stage_report() -> str:
    spec = kernel("fir")
    lines = ["Fig. 2 stages for kernel 'fir':"]

    ast = parse(spec.source)
    lines.append(f"  frontend: parse         -> {len(ast.decls)} decls, "
                 f"{len(ast.body)} statements")
    analyzed = analyze(ast)
    lines.append(f"  frontend: analyze       -> consts {analyzed.consts}")
    program = compile_dfl(spec.source)
    blocks = [item for item in program.body if isinstance(item, Block)]
    lines.append(f"  flow-graph generation   -> {len(program.body)} "
                 f"items ({len(blocks)} blocks)")
    trees = sum(len(decompose(block.dfg)) for block in blocks)
    lines.append(f"  tree decomposition      -> {trees} expression trees")

    netlist = miniacc_netlist()
    patterns = extract(netlist)
    lines.append(f"  ISE (MiniACC netlist)   -> {len(patterns)} "
                 "instruction patterns")
    target = NetlistTarget(netlist, patterns)
    lines.append(f"  pattern-matcher gen     -> "
                 f"{len(target.grammar().rules)} grammar rules")

    tc25 = TC25()
    lines.append(f"  TC25 model              -> "
                 f"{len(tc25.grammar().rules)} grammar rules")
    compiled = RecordCompiler(tc25).compile(program)
    lines.append(f"  selection..finalization -> {compiled.words()} words,"
                 f" {len(compiled.pmem_tables)} pmem tables")
    outputs, state = run_compiled(compiled, spec.inputs(seed=0))
    lines.append(f"  executable code         -> y = {outputs['y']} in "
                 f"{state.cycles} cycles")
    return "\n".join(lines)


def test_fig2_pipeline(benchmark):
    compiled, outputs, state = benchmark(full_pipeline)
    print()
    print(stage_report())
    assert compiled.words() > 0
    assert state.cycles > 0


if __name__ == "__main__":
    print(stage_report())
