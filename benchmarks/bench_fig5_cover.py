"""Fig. 5: covering data-flow trees with instruction patterns.

The figure shows two alternative covers of the same tree and the paper
explains that optimum covering is found by dynamic programming (Aho et
al.).  This bench enumerates *every* legal cover of the Fig. 4 tree by
brute force, shows the distribution of cover sizes (the figure's "two
covers" generalized), and asserts that the BURS DP picks the minimum --
the correctness statement behind iburg.

Run:  pytest benchmarks/bench_fig5_cover.py --benchmark-only -s
or :  python benchmarks/bench_fig5_cover.py
"""

from itertools import product

from repro.codegen.burg import BurgMatcher
from repro.codegen.grammar import Nt, Pat, Term
from repro.ir.ops import OpKind

try:
    from benchmarks.bench_fig4_patterns import (
        figure4_grammar, figure4_trees,
    )
except ImportError:      # executed as a script from benchmarks/
    from bench_fig4_patterns import figure4_grammar, figure4_trees


def enumerate_covers(grammar, tree, goal):
    """All legal covers (lists of rule names) of ``tree`` to ``goal``."""

    def match(pattern, node):
        """Structural match; returns Nt bindings or None."""
        if isinstance(pattern, Nt):
            return [(pattern.name, node)]
        if isinstance(pattern, Term):
            return [] if pattern.matches(node) else None
        if node.kind is not OpKind.COMPUTE \
                or node.operator.name != pattern.op:
            return None
        bindings = []
        for sub_pattern, child in zip(pattern.children, node.children):
            sub = match(sub_pattern, child)
            if sub is None:
                return None
            bindings.extend(sub)
        return bindings

    def covers(node, nonterm):
        results = []
        for rule in grammar.rules:
            if rule.nonterm != nonterm or rule.is_chain:
                continue
            bindings = match(rule.pattern, node)
            if bindings is None:
                continue
            child_covers = [covers(sub, nt) for nt, sub in bindings]
            if any(not option for option in child_covers):
                continue
            for combination in product(*child_covers):
                flat = [rule.name]
                for part in combination:
                    flat.extend(part)
                results.append(flat)
        return results

    return covers(tree, goal)


def run():
    grammar = figure4_grammar()
    matcher = BurgMatcher(grammar)
    tree = figure4_trees()[0]
    all_covers = enumerate_covers(grammar, tree, "reg")
    dp_cost = matcher.cover_cost(tree, "reg").words
    dp_rules = [rule.name for rule in matcher.cover_rules(tree, "reg")]
    return tree, all_covers, dp_cost, dp_rules


def report(tree, all_covers, dp_cost, dp_rules) -> str:
    sizes = sorted(len(cover) for cover in all_covers)
    histogram = {size: sizes.count(size) for size in sorted(set(sizes))}
    lines = [f"tree: {tree}",
             f"legal covers: {len(all_covers)}  "
             f"(patterns-used -> count: {histogram})"]
    smallest = min(all_covers, key=len)
    largest = max(all_covers, key=len)
    lines.append(f"  a largest cover  ({len(largest)} patterns): "
                 + ", ".join(largest))
    lines.append(f"  a smallest cover ({len(smallest)} patterns): "
                 + ", ".join(smallest))
    lines.append(f"  BURS dynamic programming picked {dp_cost} patterns: "
                 + ", ".join(dp_rules))
    return "\n".join(lines)


def test_fig5_cover(benchmark):
    tree, all_covers, dp_cost, dp_rules = benchmark(run)
    print()
    print(report(tree, all_covers, dp_cost, dp_rules))

    assert len(all_covers) >= 2          # the figure's "two covers"
    brute_minimum = min(len(cover) for cover in all_covers)
    assert dp_cost == brute_minimum      # DP optimality (Aho et al.)
    assert sorted(dp_rules) == sorted(min(all_covers, key=len)) or \
        len(dp_rules) == brute_minimum


if __name__ == "__main__":
    print(report(*run()))
