"""Table 1: size of compiled DSPStone programs relative to assembly.

The paper's headline result: a retargetable compiler (RECORD) competes
with -- and mostly beats -- the target-specific compiler, relative to
hand-written TMS320C25 assembly.  This bench rebuilds, verifies (bit-
exact simulation against the MiniDFL reference) and measures all ten
rows, printing the table next to the paper's numbers.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -s
or :  python benchmarks/bench_table1.py
"""

from repro.evalx.table1 import compute_table1, format_table1


def test_table1(benchmark):
    rows = benchmark.pedantic(compute_table1, kwargs={"seeds": 1},
                              iterations=1, rounds=3)
    print()
    print(format_table1(rows))

    assert all(row.verified for row in rows)
    wins = sum(1 for row in rows if row.winner == "record")
    losses = sum(1 for row in rows if row.winner == "baseline")
    assert wins >= 4 and wins > losses
    by_name = {row.kernel: row for row in rows}
    assert by_name["fir"].baseline_words >= 2 * by_name["fir"].record_words
    assert by_name["iir_biquad_one_section"].winner == "baseline"
    benchmark.extra_info["record_wins"] = wins
    benchmark.extra_info["baseline_wins"] = losses


if __name__ == "__main__":
    print(format_table1(compute_table1()))
