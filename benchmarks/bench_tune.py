"""Autotuner benchmark: per-kernel cycle wins, oracle-gated, cache-warm.

The tuner (`repro.tune`) searches the RecordOptions knob space per
(program, target) cell, measuring every candidate in real cycles on
the jit simulator and checking each against the independent IR-level
oracle.  This bench runs the search over the DSPStone suite x the four
shipped targets (quick mode: 2 kernels x 2 targets) plus a seeded
batch of generated programs, and enforces the three contracts that
make a tuning table trustworthy:

- **wins exist** -- at least one cell strictly improves on the default
  configuration (if nothing ever improves, the knob space is dead and
  the tuner is measuring noise);
- **zero miscompiles** -- every selected best agrees with the oracle
  on every input set (the gate is load-bearing, not decorative);
- **warm determinism** -- re-tuning every cell against the warm
  measurement cache replays a byte-identical table with ZERO fresh
  compiles and ZERO fresh simulations.

Results land in ``BENCH_TUNE.json`` at the repository root.

Run:  python benchmarks/bench_tune.py             (full, ~10 min)
or :  python benchmarks/bench_tune.py --quick     (CI smoke; uses
      ``.repro-cache/`` so GitHub's actions/cache can persist warmth
      across CI runs)
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import repro.cache
from repro.dspstone import KERNEL_NAMES, kernel
from repro.tune import TuneConfig, TuneError, TuneOutcome, \
    tune_program
from repro.verify.progen import generate_program

ROOT = Path(__file__).resolve().parent.parent

SEED = 0
BUDGET = 32
QUICK_BUDGET = 12
INPUTS = 2
TARGETS = ("tc25", "m56", "risc16", "asip")
QUICK_TARGETS = ("tc25", "m56")
QUICK_KERNELS = ("fir", "dot_product")
#: The generated-program batch: the tuner must work on arbitrary
#: programs, not just the ten kernels its knobs were grown against.
PROGEN_SEEDS = (1, 2, 3)
QUICK_PROGEN_SEEDS: Tuple[int, ...] = ()


def _cells(quick: bool) -> List[Tuple[object, str]]:
    kernels = QUICK_KERNELS if quick else KERNEL_NAMES
    targets = QUICK_TARGETS if quick else TARGETS
    cells: List[Tuple[object, str]] = [
        (kernel(name).program, target)
        for name in kernels for target in targets
    ]
    for seed in (QUICK_PROGEN_SEEDS if quick else PROGEN_SEEDS):
        cells.append((generate_program(random.Random(seed), seed),
                      "tc25"))
    return cells


def _selected_measurement(outcome: TuneOutcome):
    """The table entry the tuner selected as best."""
    want = json.dumps(outcome.best_options, sort_keys=True)
    for measurement in outcome.table:
        if json.dumps(measurement.options, sort_keys=True) == want:
            return measurement
    return None


def _row(outcome: TuneOutcome) -> Dict[str, object]:
    default = outcome.default.total_cycles
    saved = default - outcome.best_cycles
    return {
        "program": outcome.program,
        "target": outcome.target,
        "default_cycles": default,
        "tuned_cycles": outcome.best_cycles,
        "saved_cycles": saved,
        "saved_pct": round(100 * saved / default, 2) if default else 0.0,
        "improved": outcome.improved,
        "movers": list(outcome.movers),
        "tuned_options": (outcome.best_options
                          if outcome.improved else None),
        "rejected": len(outcome.rejected),
        "budget_used": outcome.budget_used,
        "fresh": outcome.fresh_measurements,
        "cached": outcome.cached_measurements,
    }


def _tune_all(cells, config: TuneConfig, cache_dir: Path,
              jobs: Optional[int]) -> Tuple[List[TuneOutcome], float]:
    repro.cache.configure(cache_dir)
    try:
        started = perf_counter()
        outcomes = []
        for program, target in cells:
            outcomes.append(tune_program(program, target=target,
                                         config=config, jobs=jobs,
                                         seed=SEED))
        wall = perf_counter() - started
    finally:
        repro.cache.configure(None)
    return outcomes, wall


def _table_blob(outcomes: List[TuneOutcome]) -> str:
    return json.dumps([[m.to_json() for m in outcome.table]
                       for outcome in outcomes], sort_keys=True)


def render(report: Dict[str, object]) -> str:
    summary = report["summary"]
    lines = [
        f"{row['program']:24s} {row['target']:8s} "
        f"{row['default_cycles']:>7d} -> {row['tuned_cycles']:>7d} cy"
        + (f"  (-{row['saved_pct']:.1f}%  "
           f"movers: {', '.join(row['movers'])})"
           if row["improved"] else "   (default is best)")
        for row in report["cells"]
    ]
    lines.append(
        f"{summary['improved_cells']}/{summary['total_cells']} cells "
        f"improved (best -{summary['max_saved_pct']:.1f}%, mean over "
        f"improved -{summary['mean_saved_pct_improved']:.1f}%); "
        f"{summary['miscompiled_bests']} miscompiled bests; warm "
        f"re-tune fresh measurements: {summary['warm_fresh']} "
        f"(identical: "
        + ("yes" if summary["warm_identical"] else "NO") + ")")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2 kernels x 2 targets, "
                             f"budget {QUICK_BUDGET}")
    parser.add_argument("--budget", type=int, default=None,
                        help="evaluation budget per cell "
                             f"(default {BUDGET}, quick {QUICK_BUDGET})")
    parser.add_argument("--jobs", type=int, default=None,
                        help="farm workers (default: auto)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent measurement cache for "
                             "--quick (default .repro-cache/); full "
                             "runs use a throwaway temp dir")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_TUNE.json"),
                        help="where the report JSON is written")
    args = parser.parse_args(argv)

    scratch: List[str] = []
    if args.cache_dir is not None:
        cache_dir = args.cache_dir
        cache_dir.mkdir(parents=True, exist_ok=True)
    elif args.quick:
        cache_dir = repro.cache.default_cache_dir()
    else:
        cache_dir = Path(tempfile.mkdtemp(prefix="bench-tune-cache-"))
        scratch.append(str(cache_dir))

    budget = args.budget or (QUICK_BUDGET if args.quick else BUDGET)
    config = TuneConfig(budget=budget, inputs_per_program=INPUTS)
    cells = _cells(args.quick)
    print(f"tuning {len(cells)} cells, budget {budget} "
          f"configurations each")

    try:
        try:
            cold, cold_wall = _tune_all(cells, config, cache_dir,
                                        args.jobs)
        except TuneError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"  cold pass: {cold_wall:.1f}s")
        warm, warm_wall = _tune_all(cells, config, cache_dir,
                                    args.jobs)
        print(f"  warm pass: {warm_wall:.1f}s")
    finally:
        for path in scratch:
            shutil.rmtree(path, ignore_errors=True)

    rows = [_row(outcome) for outcome in cold]
    improved = [row for row in rows if row["improved"]]
    miscompiled = sum(
        1 for outcome in cold
        if (selected := _selected_measurement(outcome)) is None
        or not selected.correct)
    warm_fresh = sum(outcome.fresh_measurements for outcome in warm)
    report: Dict[str, object] = {
        "seed": SEED,
        "quick": bool(args.quick),
        "budget": budget,
        "inputs_per_program": INPUTS,
        "sim": "jit",
        "cells": rows,
        "summary": {
            "total_cells": len(rows),
            "improved_cells": len(improved),
            "max_saved_pct": max((row["saved_pct"]
                                  for row in improved), default=0.0),
            "mean_saved_pct_improved": (
                round(sum(row["saved_pct"] for row in improved)
                      / len(improved), 2) if improved else 0.0),
            "miscompiled_bests": miscompiled,
            "cold_seconds": round(cold_wall, 3),
            "warm_seconds": round(warm_wall, 3),
            "warm_fresh": warm_fresh,
            "warm_identical": _table_blob(cold) == _table_blob(warm),
        },
    }

    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    summary = report["summary"]
    if not summary["improved_cells"]:
        print("FAIL: no cell improved on the default configuration",
              file=sys.stderr)
        return 1
    if summary["miscompiled_bests"]:
        print(f"FAIL: {summary['miscompiled_bests']} selected bests "
              "disagree with the oracle", file=sys.stderr)
        return 1
    if summary["warm_fresh"]:
        print(f"FAIL: warm re-tune performed {summary['warm_fresh']} "
              "fresh measurements", file=sys.stderr)
        return 1
    if not summary["warm_identical"]:
        print("FAIL: warm re-tune tables differ from the cold pass",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
