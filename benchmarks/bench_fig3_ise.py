"""Fig. 3: instruction set extraction with bit justification.

The figure traces the paper's example datapath and reports the
extracted pattern ``Reg[bb] := Reg[aa] + acc`` with its instruction-bit
settings.  This bench re-extracts exactly that (plus the full MiniACC
machine) and times ISE, asserting the figure's pattern and bits.

Run:  pytest benchmarks/bench_fig3_ise.py --benchmark-only -s
or :  python benchmarks/bench_fig3_ise.py
"""

from repro.ise.examples import figure3_netlist, miniacc_netlist
from repro.ise.extractor import extract


def run_extractions():
    fig3 = extract(figure3_netlist())
    miniacc = extract(miniacc_netlist())
    return fig3, miniacc


def report(fig3, miniacc) -> str:
    lines = ["Fig. 3 netlist -- extracted instruction set:"]
    lines += [f"  {p.describe()}" for p in fig3]
    lines.append("")
    lines.append(f"MiniACC netlist -- {len(miniacc)} instructions, "
                 "e.g.:")
    lines += [f"  {p.describe()}" for p in miniacc[:6]]
    return "\n".join(lines)


def test_fig3_ise(benchmark):
    fig3, miniacc = benchmark(run_extractions)
    print()
    print(report(fig3, miniacc))

    # the figure's pattern, with the figure's control story: ALU steered
    # to add (c1=0), register file write enabled, accumulator quiet
    match = [p for p in fig3
             if p.describe().startswith("Reg[bb] := add(Reg[aa], acc)")]
    assert match
    bits = match[0].bits
    assert bits == {"c1": 0, "c2": 0, "we": 1}
    assert len(fig3) == 4
    assert len(miniacc) >= 15


if __name__ == "__main__":
    print(report(*run_extractions()))
