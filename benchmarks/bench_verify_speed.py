"""Conformance-throughput benchmark: parallel + artifact-cached verify.

PR 4 built the differential fuzzer; its throughput is now the binding
constraint on how much of the conformance matrix a run can cover.  This
bench measures what the two throughput layers buy on the fixed-seed
matrix of ``python -m repro.verify``:

- the **persistent artifact cache** (`repro.cache`): compiles are ~90%
  of a cold run and are a pure function of (program, compiler, target,
  code version), so a warm cache removes them entirely -- across
  processes *and* across runs;
- the **parallel verify farm** (`repro.evalx.farm.verify_many`):
  per-program matrix checks fan out over worker processes that keep
  compiler pools, label caches and the shared artifact cache warm.

Four modes run the identical program matrix -- serial-cold,
serial-warm, parallel-cold, parallel-warm -- and the bench enforces
the two contracts that make the layers safe to rely on:

- **equivalence** -- the triage report must be byte-identical in all
  four modes (same JSON, any worker count, cold or warm cache);
- **speed** -- the full run enforces >= 3x aggregate speedup of
  parallel-warm over serial-cold, and a warm-cache hit rate of 100%
  (zero recompiles on the second pass over the same tree).

Results land in ``BENCH_VERIFY.json`` at the repository root.

Run:  python benchmarks/bench_verify_speed.py            (full matrix)
or :  python benchmarks/bench_verify_speed.py --quick    (CI smoke;
      uses ``.repro-cache/`` so GitHub's actions/cache can persist
      warmth across CI runs)
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

import repro.cache
from repro.ir.trees import clear_tree_caches
from repro.verify.diff import run_conformance

ROOT = Path(__file__).resolve().parent.parent

COUNT = 50
SEED = 0
SPEEDUP_FLOOR = 3.0


def run_mode(label: str, jobs: int, cache_dir: Optional[Path],
             count: int, seed: int) -> Dict[str, object]:
    """One timed conformance pass in a given (jobs, cache) mode.

    In-process caches (tree interning, variant memo) are dropped first
    so every mode starts from the same process state; "cold" vs "warm"
    refers purely to the on-disk artifact cache.
    """
    clear_tree_caches()
    cache = repro.cache.configure(cache_dir)
    started = perf_counter()
    report = run_conformance(count=count, seed=seed, jobs=jobs)
    wall = perf_counter() - started
    repro.cache.configure(None)
    counts = report.compile_counts()
    attempted = counts["compiles"] + counts["artifact_hits"]
    return {
        "mode": label,
        "jobs": jobs,
        "seconds": round(wall, 3),
        "programs": len(report.verdicts),
        "cells": report.cells_checked,
        "programs_per_second": round(len(report.verdicts) / wall, 2),
        "cells_per_second": round(report.cells_checked / wall, 2),
        "compiles": counts["compiles"],
        "artifact_hits": counts["artifact_hits"],
        "hit_rate": (round(counts["artifact_hits"] / attempted, 4)
                     if attempted else 0.0),
        "cache_stats": cache.stats.to_json() if cache else None,
        "triage": json.dumps(report.triage_json(), sort_keys=True),
    }


def measure(count: int, jobs: int,
            cache_root: Optional[Path] = None) -> Dict[str, object]:
    """The four-mode matrix; serial-cold is the 1-job empty-cache run."""
    scratch = None
    if cache_root is None:
        scratch = tempfile.mkdtemp(prefix="bench-verify-")
        cache_root = Path(scratch)
    serial_dir = cache_root / "serial"
    parallel_dir = cache_root / "parallel"
    try:
        rows = [
            run_mode("serial-cold", 1, serial_dir, count, SEED),
            run_mode("serial-warm", 1, serial_dir, count, SEED),
            run_mode("parallel-cold", jobs, parallel_dir, count, SEED),
            run_mode("parallel-warm", jobs, parallel_dir, count, SEED),
        ]
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    triages = {row["triage"] for row in rows}
    by_mode = {row["mode"]: row for row in rows}
    for row in rows:
        del row["triage"]
    return {
        "count": count,
        "seed": SEED,
        "jobs": jobs,
        "cells": rows[0]["cells"],
        "triage_identical": len(triages) == 1,
        "aggregate_speedup": round(
            by_mode["serial-cold"]["seconds"]
            / by_mode["parallel-warm"]["seconds"], 3),
        "warm_hit_rate": by_mode["parallel-warm"]["hit_rate"],
        "modes": rows,
    }


def quick_measure(count: int, jobs: int,
                  cache_dir: Path) -> Dict[str, object]:
    """CI smoke: one pass against a persistent cache dir, one warm pass.

    The first pass may already be warm when ``actions/cache`` restored
    ``.repro-cache/`` from an earlier CI run -- that is the point; the
    second pass must then be *fully* warm (hit rate > 0 is asserted by
    the caller, 1.0 expected when the code didn't change).
    """
    first = run_mode("first", jobs, cache_dir, count, SEED)
    warm = run_mode("parallel-warm", jobs, cache_dir, count, SEED)
    identical = first.pop("triage") == warm.pop("triage")
    return {
        "count": count,
        "seed": SEED,
        "jobs": jobs,
        "cells": first["cells"],
        "triage_identical": identical,
        "aggregate_speedup": round(first["seconds"] / warm["seconds"], 3),
        "warm_hit_rate": warm["hit_rate"],
        "modes": [first, warm],
    }


def render(report: Dict[str, object]) -> str:
    lines = [f"{'mode':15s} {'jobs':>4s} {'secs':>8s} {'prog/s':>8s} "
             f"{'cells/s':>8s} {'compiles':>8s} {'hits':>6s}",
             "-" * 64]
    for row in report["modes"]:
        lines.append(
            f"{row['mode']:15s} {row['jobs']:>4d} {row['seconds']:>8.2f} "
            f"{row['programs_per_second']:>8.1f} "
            f"{row['cells_per_second']:>8.1f} "
            f"{row['compiles']:>8d} {row['artifact_hits']:>6d}")
    lines.append("-" * 64)
    lines.append(
        f"aggregate: {report['aggregate_speedup']:.2f}x "
        f"(parallel-warm vs serial-cold) over {report['count']} programs "
        f"x {report['cells']} cells; warm hit rate "
        f"{report['warm_hit_rate']:.0%}")
    lines.append("triage byte-identical across modes: "
                 + ("yes" if report["triage_identical"] else "NO"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer programs, two passes "
                             "against a persistent cache dir, no "
                             "speedup floor (runners are noisy); "
                             "triage equality and warm cache hits are "
                             "still enforced")
    parser.add_argument("--count", type=int, default=None,
                        help=f"programs per mode (default {COUNT}, "
                             f"quick 12)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel modes "
                             "(default 2)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent cache dir for --quick "
                             "(default .repro-cache/); full runs use "
                             "a throwaway temp dir")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_VERIFY.json"),
                        help="where the report JSON is written")
    args = parser.parse_args(argv)

    if args.quick:
        cache_dir = args.cache_dir or repro.cache.default_cache_dir()
        report = quick_measure(args.count or 12, args.jobs, cache_dir)
    else:
        report = measure(args.count or COUNT, args.jobs)
    print(render(report))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["triage_identical"]:
        print("FAIL: triage report differed between modes",
              file=sys.stderr)
        return 1
    if report["warm_hit_rate"] <= 0.0:
        print("FAIL: warm run hit the artifact cache 0 times",
              file=sys.stderr)
        return 1
    if not args.quick and report["aggregate_speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: expected >= {SPEEDUP_FLOOR}x parallel-warm vs "
              f"serial-cold, got {report['aggregate_speedup']:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
