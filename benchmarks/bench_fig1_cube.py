"""Fig. 1: the processor cube, regenerated from the target models.

The figure classifies processors along availability / domain /
application axes.  This bench classifies every shipped target (plus two
ASIP corner cases) and checks that the populated corners match the
figure's taxonomy, timing the classification (which exercises grammar
construction -- the explicit model is the input).

Run:  pytest benchmarks/bench_fig1_cube.py --benchmark-only -s
or :  python benchmarks/bench_fig1_cube.py
"""

from repro.targets.asip import Asip, AsipParams
from repro.targets.cube import classify, cube_table
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def build_and_classify():
    targets = [TC25(), M56(), Risc16(), Asip(),
               Asip(AsipParams(has_repeat=False, address_registers=2))]
    return targets, [classify(t) for t in targets]


def test_fig1_cube(benchmark):
    targets, positions = benchmark(build_and_classify)
    print()
    print(cube_table(targets))

    corners = [p.corner_name for p in positions]
    assert corners[:4] == ["DSP core", "DSP core", "GPP core", "ASSP"]
    assert all(p.form == "core" for p in positions)
    # the impossible corner stays impossible
    import pytest
    from repro.targets.cube import CubePosition
    with pytest.raises(ValueError):
        CubePosition(form="packaged", domain="dsp",
                     application="configurable")


if __name__ == "__main__":
    targets, _ = build_and_classify()
    print(cube_table(targets))
