"""Measurement cells: honest, oracle-checked, content-addressed."""

from __future__ import annotations

import json

import pytest

import repro.cache
from repro.cache import ArtifactCache
from repro.codegen.pipeline import RecordOptions
from repro.dspstone import kernel
from repro.tune.measure import (
    clear_measure_pools, measure_cell, measurement_key,
)
from repro.tune.search import default_input_sets


@pytest.fixture(autouse=True)
def _fresh_pools():
    clear_measure_pools()
    yield
    clear_measure_pools()


@pytest.fixture()
def active(tmp_path):
    """A tmp artifact cache installed process-wide for one test."""
    cache = ArtifactCache(tmp_path / "cache")
    repro.cache._ACTIVE = cache
    yield cache
    repro.cache._ACTIVE = None


def _cell(name="real_update", target="tc25", **kwargs):
    program = kernel(name).program
    inputs = default_input_sets(program, count=2, seed=0)
    options = RecordOptions(**kwargs)
    return program, target, options, inputs


def test_measure_counts_real_cycles_and_agrees_with_oracle():
    measurement = measure_cell(*_cell())
    assert measurement.ok
    assert measurement.correct
    assert len(measurement.cycles) == 2
    assert all(c > 0 for c in measurement.cycles)
    assert measurement.total_cycles == sum(measurement.cycles)
    assert measurement.words > 0
    assert not measurement.cached


def test_compile_error_is_a_measurement_not_a_crash(m56):
    program, _target, _options, inputs = _cell()
    bad = RecordOptions(compaction="no-such-strategy")
    measurement = measure_cell(program, "m56", bad, inputs)
    assert not measurement.ok
    assert measurement.error_type == "CompileError"
    assert not measurement.correct
    assert measurement.total_cycles == 0


def test_record_replay_is_byte_identical(active):
    cell = _cell()
    first = measure_cell(*cell)
    second = measure_cell(*cell)
    assert not first.cached
    assert second.cached
    assert json.dumps(first.to_json(), sort_keys=True) \
        == json.dumps(second.to_json(), sort_keys=True)


def test_key_depends_on_every_ingredient():
    program, target, options, inputs = _cell()
    base = measurement_key(program, target, options, inputs)
    assert base is not None
    assert measurement_key(program, "m56", options, inputs) != base
    assert measurement_key(program, target,
                           RecordOptions(metric="speed"),
                           inputs) != base
    assert measurement_key(program, target, options,
                           inputs[:1]) != base
    assert measurement_key(program, target, options, inputs,
                           sim="fast") != base
    other = kernel("complex_multiply").program
    assert measurement_key(other, target, options, inputs) != base


def test_key_is_stable_across_calls():
    program, target, options, inputs = _cell()
    assert measurement_key(program, target, options, inputs) \
        == measurement_key(program, target, options, inputs)
