"""The tuning database and the TunedCompiler that consults it."""

from __future__ import annotations

import json

import pytest

from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.dspstone import kernel
from repro.tune.db import TuningDB, entry_key, program_digest
from repro.tune.tuned import TunedCompiler


def _db(tmp_path) -> TuningDB:
    return TuningDB.load(tmp_path / "tune.json")


def test_missing_file_is_an_empty_db(tmp_path):
    db = _db(tmp_path)
    assert db.entries == {}
    assert db.lookup(kernel("fir").program, "tc25") is None


def test_record_save_load_round_trip(tmp_path):
    program = kernel("fir").program
    options = RecordOptions(fuse_shift_idioms=True)
    db = _db(tmp_path)
    assert db.record(program, "tc25", {"options": options.to_dict(),
                                       "tuned_cycles": 90,
                                       "default_cycles": 128})
    db.save()

    loaded = TuningDB.load(db.path)
    entry = loaded.lookup(program, "tc25")
    assert entry["tuned_cycles"] == 90
    assert loaded.options_for(program, "tc25") == options
    # A different target -- and a different program -- miss:
    assert loaded.lookup(program, "m56") is None
    assert loaded.lookup(kernel("dot_product").program, "tc25") is None


def test_digest_is_structural():
    fir = kernel("fir").program
    assert program_digest(fir) == program_digest(kernel("fir").program)
    assert program_digest(fir) != program_digest(
        kernel("dot_product").program)


def test_undeserializable_entry_is_a_hint_not_a_crash(tmp_path):
    program = kernel("fir").program
    db = _db(tmp_path)
    db.record(program, "tc25",
              {"options": {"no_such_knob": 1, "metric": "speed"}})
    assert db.options_for(program, "tc25") is None


def test_save_is_atomic_and_versioned(tmp_path):
    db = _db(tmp_path)
    db.record(kernel("fir").program, "tc25",
              {"options": RecordOptions().to_dict()})
    db.save()
    payload = json.loads(db.path.read_text())
    assert payload["format"] == 1
    assert not list(db.path.parent.glob("*.tmp"))
    digest = program_digest(kernel("fir").program)
    assert entry_key(digest, "tc25") in payload["entries"]


def test_unsupported_format_rejected(tmp_path):
    path = tmp_path / "tune.json"
    path.write_text(json.dumps({"format": 99, "entries": {}}))
    with pytest.raises(ValueError):
        TuningDB.load(path)


def test_tuned_compiler_applies_stored_options(tmp_path, tc25):
    fir = kernel("fir").program
    tuned_options = RecordOptions(fuse_shift_idioms=True)
    db = _db(tmp_path)
    db.record(fir, "tc25", {"options": tuned_options.to_dict()})

    compiler = TunedCompiler(tc25, db=db)
    assert compiler.options_for(fir) == tuned_options
    # A program without an entry falls back to the default pipeline:
    dot = kernel("dot_product").program
    assert compiler.options_for(dot) == RecordOptions()

    built = compiler.compile(fir)
    reference = RecordCompiler(tc25, tuned_options).compile(fir)
    assert built.listing() == reference.listing()
    untuned = RecordCompiler(tc25).compile(fir)
    assert built.listing() != untuned.listing()


def test_tuned_compiler_keys_artifacts_like_record(tmp_path, tc25):
    compiler = TunedCompiler(tc25, db=_db(tmp_path))
    assert compiler.name == "record"
    assert compiler.options == RecordOptions()


def test_api_compile_program_tuned(tmp_path):
    from repro import compile_kernel
    fir = kernel("fir").program
    db = _db(tmp_path)
    db.record(fir, "tc25",
              {"options": RecordOptions(
                  fuse_shift_idioms=True).to_dict()})
    db.save()
    via_db = compile_kernel("fir", compiler="tuned", tuning_db=db)
    via_path = compile_kernel("fir", compiler="tuned",
                              tuning_db=db.path)
    assert via_db.listing() == via_path.listing()
    plain = compile_kernel("fir")
    assert via_db.listing() != plain.listing()
