"""The staged search: budgeted, deterministic, oracle-gated.

The two load-bearing contracts from the issue live here: tuning the
same kernel twice yields a byte-identical measurement table with zero
fresh work on the second run (the records replay from the persistent
cache), and a semantics-breaking configuration -- injected by
monkeypatching the measurement layer so one knob produces fast but
*wrong* code -- is rejected by the selection gate no matter how fast
it claims to be.
"""

from __future__ import annotations

import json

import pytest

import repro.cache
import repro.tune.search as search_mod
from repro.cache import ArtifactCache
from repro.codegen.pipeline import RecordOptions
from repro.dspstone import kernel
from repro.tune import (
    TuneConfig, TuneError, tune_kernel, tune_program, verify_selection,
)
from repro.tune.measure import Measurement, clear_measure_pools


@pytest.fixture(autouse=True)
def _fresh_pools():
    clear_measure_pools()
    yield
    clear_measure_pools()


@pytest.fixture()
def active(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    repro.cache._ACTIVE = cache
    yield cache
    repro.cache._ACTIVE = None


CONFIG = TuneConfig(budget=8, inputs_per_program=1)


def test_budget_is_respected_and_default_measured_first():
    outcome = tune_kernel("real_update", config=CONFIG, jobs=1)
    assert outcome.budget_used <= CONFIG.budget
    assert outcome.budget_used == len(outcome.table)
    assert outcome.table[0].options == RecordOptions().to_dict()
    assert outcome.default is outcome.table[0]
    assert outcome.best_cycles <= outcome.default.total_cycles


def test_rerun_replays_byte_identical_table_with_zero_fresh_work(active):
    first = tune_kernel("fir", config=CONFIG, jobs=1)
    second = tune_kernel("fir", config=CONFIG, jobs=1)
    blob = lambda o: json.dumps([m.to_json() for m in o.table],  # noqa: E731
                                sort_keys=True)
    assert blob(first) == blob(second)
    assert first.fresh_measurements == first.budget_used
    assert second.fresh_measurements == 0
    assert second.cached_measurements == second.budget_used
    assert second.best_options == first.best_options
    assert second.best_cycles == first.best_cycles


def test_tuning_finds_the_known_fir_win():
    # fuse_shift_idioms is off by default (Table 1 fidelity); on the
    # TC25 it strictly reduces fir's cycle count, so the tuner must
    # surface it.
    outcome = tune_kernel("fir", config=TuneConfig(budget=16,
                                                   inputs_per_program=1),
                          jobs=1)
    assert outcome.improved
    assert "fuse_shift_idioms" in outcome.movers
    assert outcome.tuned_options.fuse_shift_idioms is True


def test_selection_gate_rejects_fast_but_wrong_configuration(monkeypatch):
    """Inject a semantics-breaking knob: every ``peephole=False``
    candidate measures absurdly fast but fails the oracle comparison.
    The gate must reject it (it lands in ``outcome.rejected``) and
    select a configuration that agrees with the oracle instead."""
    real_measure = search_mod.measure_cell

    def lying_measure(program, target_name, options, input_sets,
                      sim="jit"):
        measurement = real_measure(program, target_name, options,
                                   input_sets, sim=sim)
        if options.peephole is False:
            return Measurement(
                target=measurement.target,
                options=measurement.options,
                cycles=[1] * len(measurement.cycles),
                total_cycles=len(measurement.cycles),
                words=1,
                correct=False)         # fast, small -- and wrong
        return measurement

    monkeypatch.setattr(search_mod, "measure_cell", lying_measure)
    outcome = tune_program(kernel("real_update").program,
                           config=TuneConfig(budget=16,
                                             inputs_per_program=1),
                           jobs=1)
    wrong = [opts for opts in outcome.rejected
             if opts["peephole"] is False]
    assert wrong, "the fast-but-wrong candidate never hit the gate"
    assert outcome.best_options["peephole"] is True
    best = min((m for m in outcome.table if verify_selection(m)),
               key=lambda m: m.total_cycles)
    assert outcome.best_cycles == best.total_cycles


def test_gate_requires_both_ok_and_correct():
    good = Measurement(target="tc25", options={}, correct=True)
    assert verify_selection(good)
    assert not verify_selection(
        Measurement(target="tc25", options={}, correct=False))
    assert not verify_selection(
        Measurement(target="tc25", options={}, correct=True,
                    error="boom", error_type="RuntimeError"))


def test_unmeasurable_default_raises_tune_error(monkeypatch):
    def broken_measure(program, target_name, options, input_sets,
                       sim="jit"):
        return Measurement(target=target_name,
                           options=options.to_dict(),
                           error="injected", error_type="CompileError")

    monkeypatch.setattr(search_mod, "measure_cell", broken_measure)
    with pytest.raises(TuneError):
        tune_program(kernel("real_update").program, config=CONFIG,
                     jobs=1)


def test_farm_and_serial_paths_agree(active):
    serial = tune_kernel("complex_multiply", config=CONFIG, jobs=1)
    repro.cache._ACTIVE = None    # force the farm path to re-measure
    clear_measure_pools()
    farmed = tune_kernel("complex_multiply", config=CONFIG, jobs=2)
    assert json.dumps([m.to_json() for m in serial.table],
                      sort_keys=True) \
        == json.dumps([m.to_json() for m in farmed.table],
                      sort_keys=True)


def test_config_validation():
    with pytest.raises(ValueError):
        TuneConfig(budget=0)
    with pytest.raises(ValueError):
        TuneConfig(inputs_per_program=0)
