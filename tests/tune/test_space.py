"""The knob space: target-aware, default-anchored, deterministic."""

from __future__ import annotations

from dataclasses import fields

from repro.codegen.pipeline import RecordOptions
from repro.tune.space import (
    KNOBS, cross_candidates, relevant_knobs, screening_candidates,
)


def test_every_knob_is_a_record_options_field():
    names = {spec.name for spec in fields(RecordOptions)}
    for knob, values in KNOBS:
        assert knob in names
        assert len(values) >= 2


def test_knob_values_include_the_default():
    default = RecordOptions()
    for knob, values in KNOBS:
        assert getattr(default, knob) in values, knob


def test_m56_only_knobs_pruned_elsewhere():
    m56_knobs = {knob for knob, _values in relevant_knobs("m56")}
    for other in ("tc25", "risc16", "asip"):
        pruned = {knob for knob, _values in relevant_knobs(other)}
        assert pruned < m56_knobs
        for memory_knob in ("offset_assignment", "bank_assignment",
                            "compaction"):
            assert memory_knob not in pruned


def test_screening_skips_default_values():
    default = RecordOptions()
    for knob, options in screening_candidates(default, "m56"):
        assert getattr(options, knob) != getattr(default, knob)
        # exactly one knob deviates:
        others = [spec.name for spec in fields(RecordOptions)
                  if spec.name != knob]
        for name in others:
            assert getattr(options, name) == getattr(default, name)


def test_screening_is_deterministic():
    default = RecordOptions()
    first = screening_candidates(default, "tc25")
    second = screening_candidates(default, "tc25")
    assert first == second


def test_cross_candidates_skip_all_default_combo():
    default = RecordOptions()
    movers = {"metric": ["speed"], "peephole": [False]}
    combos = cross_candidates(default, movers)
    assert default not in combos
    # 2 x 2 axis values (with leave-alone) minus the all-default combo:
    assert len(combos) == 3
    assert RecordOptions(metric="speed", peephole=False) in combos


def test_cross_candidates_follow_knob_order():
    default = RecordOptions()
    movers = {"peephole": [False], "metric": ["speed"]}
    combos = cross_candidates(default, movers)
    # KNOBS lists metric before peephole; the enumeration must not
    # depend on the movers dict's insertion order.
    assert combos == cross_candidates(
        default, {"metric": ["speed"], "peephole": [False]})
