"""Unit + property tests for constant folding and canonicalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.folding import canonicalize, fold_constants, optimize_tree
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import OpKind
from repro.ir.trees import Tree

FPC = FixedPointContext(16)


def test_fold_constant_subtree():
    tree = Tree.compute("add", Tree.const(3),
                        Tree.compute("mul", Tree.const(4), Tree.const(5)))
    folded = fold_constants(tree, FPC)
    assert folded == Tree.const(23)


def test_fold_skips_out_of_range_results():
    tree = Tree.compute("mul", Tree.const(30000), Tree.const(30000))
    folded = fold_constants(tree, FPC)
    assert folded.kind is OpKind.COMPUTE    # kept: result exceeds word


def test_fold_partial():
    tree = Tree.compute("add", Tree.ref("x"),
                        Tree.compute("sub", Tree.const(9), Tree.const(4)))
    folded = fold_constants(tree, FPC)
    assert str(folded) == "add(x, #5)"


def test_canonicalize_moves_constant_right():
    tree = Tree.compute("add", Tree.const(3), Tree.ref("x"))
    assert str(canonicalize(tree)) == "add(x, #3)"
    # non-commutative untouched
    tree = Tree.compute("sub", Tree.const(3), Tree.ref("x"))
    assert str(canonicalize(tree)) == "sub(#3, x)"


def test_canonicalize_identities_and_annihilator():
    assert canonicalize(Tree.compute("add", Tree.ref("x"),
                                     Tree.const(0))) == Tree.ref("x")
    assert canonicalize(Tree.compute("mul", Tree.ref("x"),
                                     Tree.const(1))) == Tree.ref("x")
    assert canonicalize(Tree.compute("mul", Tree.ref("x"),
                                     Tree.const(0))) == Tree.const(0)
    assert canonicalize(Tree.compute("shl", Tree.ref("x"),
                                     Tree.const(0))) == Tree.ref("x")


def test_strength_reduction():
    tree = Tree.compute("mul", Tree.ref("x"), Tree.const(16))
    assert str(canonicalize(tree)) == "shl(x, #4)"


def test_double_negation():
    tree = Tree.compute("neg", Tree.compute("neg", Tree.ref("x")))
    assert canonicalize(tree) == Tree.ref("x")


def test_optimize_reaches_fixpoint():
    # (2+3)*x + 0 -> mul(x, #5) via fold + canonicalize interleaving
    tree = Tree.compute(
        "add",
        Tree.compute("mul",
                     Tree.compute("add", Tree.const(2), Tree.const(3)),
                     Tree.ref("x")),
        Tree.const(0))
    assert str(optimize_tree(tree, FPC)) == "mul(x, #5)"


VARIABLES = ["a", "b"]


def leafs():
    return st.one_of(
        st.sampled_from(VARIABLES).map(Tree.ref),
        st.integers(min_value=-40, max_value=40).map(Tree.const),
    )


def trees():
    def extend(children):
        return st.tuples(
            st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
            children, children,
        ).map(lambda t: Tree.compute(t[0], t[1], t[2]))
    return st.recursive(leafs(), extend, max_leaves=6)


@settings(max_examples=150, deadline=None)
@given(trees(), st.fixed_dictionaries(
    {name: st.integers(min_value=-50, max_value=50)
     for name in VARIABLES}))
def test_optimize_preserves_exact_semantics(tree, env):
    optimized = optimize_tree(tree, FPC)
    assert optimized.evaluate(dict(env), FPC) == \
        tree.evaluate(dict(env), FPC)


@settings(max_examples=100, deadline=None)
@given(trees())
def test_optimize_never_grows_the_tree(tree):
    assert optimize_tree(tree, FPC).size() <= tree.size()
