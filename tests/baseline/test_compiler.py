"""Unit tests for the baseline target-specific compiler."""

import pytest

from repro.baseline.compiler import (
    BaselineCompiler, BaselineOptions, eliminate_redundant_loads,
)
from repro.codegen.asm import AsmInstr, CodeSeq, Label, Mem
from repro.codegen.pipeline import CompileError
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)


def ins(name, *operands):
    return AsmInstr(opcode=name, operands=tuple(operands))


def test_baseline_is_target_specific():
    with pytest.raises(CompileError):
        BaselineCompiler(Risc16())


def test_loop_induction_variable_in_memory():
    program = compile_dfl("""
program p;
const N = 4;
input a[N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[i];
  end;
  y := acc;
end.
""")
    compiled = BaselineCompiler(TC25()).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    # explicit address computation: base added, pointer loaded via LAR
    assert "ADLK" in opcodes and "LAR" in opcodes
    # no DSP parallelism
    assert "RPTK" not in opcodes and "MAC" not in opcodes
    outputs, _ = run_compiled(compiled, {"a": [1, 2, 3, 4]})
    assert outputs["y"] == 10


def test_strided_access_scales_through_multiplier():
    program = compile_dfl("""
program p;
const N = 3;
input a[2*N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[2*i];
  end;
  y := acc;
end.
""")
    compiled = BaselineCompiler(TC25()).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    assert "MPYK" in opcodes      # index scaling i*2
    outputs, _ = run_compiled(compiled, {"a": [1, 10, 2, 10, 3, 10]})
    assert outputs["y"] == 6


def test_indexed_store():
    program = compile_dfl("""
program p;
const N = 4;
input a[N]; output d[N];
begin
  for i in 0 .. N-1 do
    d[i] := a[i] + 1;
  end;
end.
""")
    compiled = BaselineCompiler(TC25()).compile(program)
    outputs, _ = run_compiled(compiled, {"a": [5, 6, 7, 8]})
    assert outputs["d"] == [6, 7, 8, 9]


def test_constant_folding_in_baseline():
    program = compile_dfl("""
program p;
input x; output y;
begin
  y := x + (3 * 4 - 12);
end.
""")
    folded = BaselineCompiler(TC25()).compile(program)
    unfolded = BaselineCompiler(
        TC25(), BaselineOptions(fold_constants=False)).compile(program)
    assert folded.words() < unfolded.words()
    for compiled in (folded, unfolded):
        outputs, _ = run_compiled(compiled, {"x": 5})
        assert outputs["y"] == 5


# ----------------------------------------------------------------------
# Redundant-load elimination
# ----------------------------------------------------------------------

def mem(symbol):
    return Mem(symbol)


def test_rle_removes_adjacent_pair():
    code = CodeSeq([ins("SACL", mem("t")), ins("LAC", mem("t")),
                    ins("ADD", mem("u")), ins("SACL", mem("v"))])
    result = eliminate_redundant_loads(code)
    opcodes = [i.opcode for i in result.instructions()]
    assert opcodes == ["SACL", "ADD", "SACL"]


def test_rle_keeps_pair_before_unsafe_use():
    # SFR inspects high bits: the wrapped reload differs from the exact
    # accumulator, so the reload must stay.
    code = CodeSeq([ins("SACL", mem("t")), ins("LAC", mem("t")),
                    ins("SFR"), ins("SACL", mem("v"))])
    result = eliminate_redundant_loads(code)
    opcodes = [i.opcode for i in result.instructions()]
    assert opcodes == ["SACL", "LAC", "SFR", "SACL"]


def test_rle_respects_control_flow_boundaries():
    code = CodeSeq([ins("SACL", mem("t")), Label("L"),
                    ins("LAC", mem("t"))])
    result = eliminate_redundant_loads(code)
    opcodes = [i.opcode for i in result.instructions()]
    assert opcodes == ["SACL", "LAC"]


def test_rle_requires_same_operand():
    code = CodeSeq([ins("SACL", mem("t")), ins("LAC", mem("u"))])
    result = eliminate_redundant_loads(code)
    assert len(list(result.instructions())) == 2


def test_rle_end_of_code_is_safe():
    code = CodeSeq([ins("SACL", mem("t")), ins("LAC", mem("t"))])
    result = eliminate_redundant_loads(code)
    assert [i.opcode for i in result.instructions()] == ["SACL"]


def test_rle_semantics_on_real_kernel():
    program = compile_dfl("""
program p;
input x; output y;
var t;
begin
  t := x + 1;
  y := t * 2;
end.
""")
    with_rle = BaselineCompiler(TC25()).compile(program)
    without = BaselineCompiler(
        TC25(),
        BaselineOptions(eliminate_redundant_loads=False)
    ).compile(program)
    assert with_rle.words() <= without.words()
    for compiled in (with_rle, without):
        outputs, _ = run_compiled(compiled, {"x": 20})
        assert outputs["y"] == 42
