"""Delta-debugging shrinker: reduction moves, predicate safety, probe
bounds.  These tests use synthetic structural predicates (no
compilation) so they pin shrinker behaviour in isolation."""

import random

import pytest

from repro.verify.corpus import program_to_spec
from repro.verify.progen import generate_program
from repro.verify.shrink import shrink_program


def _count_op(program, op_name):
    total = [0]

    def scan(expr):
        if expr["kind"] == "compute":
            if expr["op"] == op_name:
                total[0] += 1
            for child in expr["children"]:
                scan(child)

    def walk(items):
        for item in items:
            if item["kind"] == "block":
                for write in item["writes"]:
                    scan(write["expr"])
            else:
                walk(item["body"])

    walk(program_to_spec(program)["body"])
    return total[0]


def _stats(program):
    spec = program_to_spec(program)
    writes = [0]

    def walk(items):
        for item in items:
            if item["kind"] == "block":
                writes[0] += len(item["writes"])
            else:
                walk(item["body"])

    walk(spec["body"])
    return len(spec["body"]), writes[0]


def _program_with_mul():
    for seed in range(50):
        program = generate_program(random.Random(seed), seed)
        if _count_op(program, "mul") >= 2:
            return program
    raise AssertionError("grammar no longer produces mul-heavy programs")


def test_shrinks_to_single_write():
    program = _program_with_mul()
    small = shrink_program(program,
                           lambda p: _count_op(p, "mul") >= 1)
    items, writes = _stats(small)
    assert items == 1 and writes == 1
    assert _count_op(small, "mul") == 1
    before_items, before_writes = _stats(program)
    assert (items, writes) < (before_items, before_writes)


def test_drops_unused_declarations():
    program = _program_with_mul()
    small = shrink_program(program,
                           lambda p: _count_op(p, "mul") >= 1)
    used = str(program_to_spec(small)["body"])
    for symbol in small.inputs():
        assert symbol.name in used, \
            f"unused input {symbol.name!r} survived shrinking"


def test_predicate_must_hold_on_original():
    program = generate_program(random.Random(0), 0)
    with pytest.raises(ValueError):
        shrink_program(program, lambda p: False)


def test_predicate_exceptions_reject_the_candidate():
    program = _program_with_mul()
    anchor = program.outputs()[0].name

    def predicate(candidate):
        # Raises KeyError once the anchor output is reduced away; the
        # shrinker must treat that as "not a reproducer", not crash.
        candidate.symbol(anchor)
        return _count_op(candidate, "mul") >= 1

    small = shrink_program(program, predicate)
    assert anchor in small.symbols
    assert _count_op(small, "mul") >= 1


def test_probe_budget_is_respected():
    program = _program_with_mul()
    probes = [0]

    def predicate(candidate):
        probes[0] += 1
        return _count_op(candidate, "mul") >= 1

    shrink_program(program, predicate, max_probes=10)
    # 1 initial validation + at most max_probes candidate probes
    assert probes[0] <= 11
