"""Campaign engine: sharding, resume, determinism, failure classes.

The promises under test:

- **shard determinism** -- the same seed range split over 1, 2 and 7
  shards yields a byte-identical merged triage (`merged_triage_text`),
  and the parallel dispatcher cannot change it either;
- **crash resume** -- a campaign killed mid-flight (simulated worker
  death) resumes with no duplicated and no lost seeds and ends with
  the identical final triage;
- **budget** -- an expired budget checkpoints instead of discarding,
  and `resume` finishes the remainder;
- **state discipline** -- the state file is refused when it exists
  without `resume`, refused on config mismatch, and every checkpoint
  is a complete, parseable JSON document;
- **failure classes** -- an injected decoder fault's many mismatches
  dedup to a small set of fingerprinted classes, each filed at most
  once into the corpus directory.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.cache
from repro.evalx import farm
from repro.verify.campaign import (
    CampaignConfig, CampaignError, load_state, merged_triage,
    merged_triage_text, run_campaign, summarize,
)

TARGETS = ("tc25",)


@pytest.fixture(autouse=True)
def _no_leaked_cache():
    """Every test starts and ends with caching off."""
    repro.cache.configure(None)
    yield
    repro.cache.configure(None)


def _config(**overrides) -> CampaignConfig:
    base = dict(seed=0, programs=8, shards=4, targets=TARGETS,
                inputs_per_program=2, profile="small")
    base.update(overrides)
    return CampaignConfig(**base)


# ----------------------------------------------------------------------
# Config / sharding arithmetic
# ----------------------------------------------------------------------

def test_shard_ranges_cover_exactly_once():
    for programs, shards in ((8, 4), (10, 3), (1, 8), (7, 7), (100, 9)):
        config = _config(programs=programs, shards=shards)
        ranges = config.shard_ranges()
        indices = [index for start, count in ranges
                   for index in range(start, start + count)]
        assert indices == list(range(programs)), (programs, shards)
        assert all(count > 0 for _start, count in ranges)


def test_config_round_trips_through_json():
    config = _config(fault=("ADD", "SUB"), shards=3)
    assert CampaignConfig.from_json(config.to_json()) == config


def test_config_rejects_nonsense():
    with pytest.raises(ValueError):
        _config(programs=0)
    with pytest.raises(ValueError):
        _config(programs=2_000_000)
    with pytest.raises(ValueError):
        _config(profile="no-such-profile")


# ----------------------------------------------------------------------
# Shard determinism
# ----------------------------------------------------------------------

def test_merged_triage_invariant_across_shard_counts(tmp_path):
    """1, 2 and 7 shards over the same range: byte-identical triage."""
    texts = []
    for shards in (1, 2, 7):
        config = _config(shards=shards)
        result = run_campaign(config, tmp_path / f"state-{shards}.json")
        assert result.complete and result.ok
        texts.append(merged_triage_text(result.state))
    assert texts[0] == texts[1] == texts[2]


def test_parallel_dispatch_matches_serial_triage(tmp_path):
    config = _config(shards=4)
    serial = run_campaign(config, tmp_path / "serial.json")
    parallel = run_campaign(config, tmp_path / "parallel.json", jobs=2)
    assert parallel.complete and parallel.ok
    assert merged_triage_text(parallel.state) \
        == merged_triage_text(serial.state)


def test_triage_invariant_with_mismatches(tmp_path):
    """Shard invariance must hold for red campaigns too."""
    texts = []
    for shards in (1, 3):
        config = _config(programs=4, shards=shards,
                         fault=("ADD", "SUB"))
        result = run_campaign(config, tmp_path / f"red-{shards}.json",
                              classify=False)
        assert result.complete
        assert result.mismatch_count > 0, \
            "the seeded fault must be detected"
        texts.append(merged_triage_text(result.state))
    assert texts[0] == texts[1]


# ----------------------------------------------------------------------
# Crash + resume
# ----------------------------------------------------------------------

def test_crash_resume_no_lost_or_duplicate_seeds(tmp_path, monkeypatch):
    """Kill the campaign after two shards; --resume finishes it."""
    config = _config(programs=10, shards=5)
    reference = run_campaign(config, tmp_path / "uninterrupted.json")
    assert reference.complete

    state_path = tmp_path / "crashing.json"
    real = farm.run_shard_job
    calls = []

    def dies_after_two(job):
        if len(calls) >= 2:
            raise RuntimeError("worker killed mid-campaign")
        calls.append(job)
        return real(job)

    monkeypatch.setattr(farm, "run_shard_job", dies_after_two)
    with pytest.raises(RuntimeError):
        run_campaign(config, state_path)

    # The checkpoint survived the crash: exactly the two completed
    # shards are recorded, the rest are still pending.
    state = load_state(state_path)
    done = [shard for shard in state["shards"]
            if shard["status"] == "done"]
    assert len(done) == 2
    done_indices = {index for shard in done
                    for index in range(shard["start"],
                                       shard["start"] + shard["count"])}
    assert len(done_indices) == sum(shard["count"] for shard in done)

    monkeypatch.setattr(farm, "run_shard_job", real)
    resumed = run_campaign(config, state_path, resume=True)
    assert resumed.complete and resumed.ok
    assert resumed.shards_run == 3, "done shards must not re-run"

    # No seed lost, none checked twice, identical final triage.
    final = load_state(state_path)
    covered = [index for shard in final["shards"]
               for index in range(shard["start"],
                                  shard["start"] + shard["count"])]
    assert sorted(covered) == list(range(config.programs))
    assert len(covered) == len(set(covered))
    assert merged_triage_text(final) \
        == merged_triage_text(reference.state)


def test_worker_error_checkpoints_and_resumes(tmp_path, monkeypatch):
    """An error *result* (not a crash) also leaves a resumable state."""
    config = _config(programs=8, shards=4)
    reference = run_campaign(config, tmp_path / "ref.json")

    real = farm.run_shard_job
    seen = []

    def errors_on_third(job):
        seen.append(job)
        if len(seen) == 3:
            return farm.ShardResult(job=job, error="simulated death",
                                    error_type="RuntimeError")
        return real(job)

    monkeypatch.setattr(farm, "run_shard_job", errors_on_third)
    state_path = tmp_path / "erroring.json"
    broken = run_campaign(config, state_path)
    assert not broken.ok and not broken.complete
    assert any("simulated death" in error for error in broken.errors)
    assert "simulated death" in summarize(broken)

    monkeypatch.setattr(farm, "run_shard_job", real)
    resumed = run_campaign(config, state_path, resume=True)
    assert resumed.complete and resumed.ok
    assert merged_triage_text(resumed.state) \
        == merged_triage_text(reference.state)


def test_budget_checkpoints_then_resume_completes(tmp_path):
    config = _config(programs=8, shards=4)
    reference = run_campaign(config, tmp_path / "ref.json")

    state_path = tmp_path / "budgeted.json"
    stopped = run_campaign(config, state_path, budget_seconds=0.0)
    assert stopped.budget_exhausted and not stopped.complete
    assert stopped.shards_run == 0

    resumed = run_campaign(config, state_path, resume=True)
    assert resumed.complete
    assert merged_triage_text(resumed.state) \
        == merged_triage_text(reference.state)


def test_resume_of_finished_campaign_runs_nothing(tmp_path):
    config = _config()
    first = run_campaign(config, tmp_path / "state.json")
    assert first.complete
    again = run_campaign(config, tmp_path / "state.json", resume=True)
    assert again.complete and again.shards_run == 0 \
        and again.programs_run == 0


# ----------------------------------------------------------------------
# State discipline
# ----------------------------------------------------------------------

def test_existing_state_refused_without_resume(tmp_path):
    config = _config()
    run_campaign(config, tmp_path / "state.json")
    with pytest.raises(CampaignError, match="already exists"):
        run_campaign(config, tmp_path / "state.json")


def test_resume_refuses_config_mismatch(tmp_path):
    run_campaign(_config(programs=8), tmp_path / "state.json")
    with pytest.raises(CampaignError, match="different configuration"):
        run_campaign(_config(programs=9), tmp_path / "state.json",
                     resume=True)


def test_every_checkpoint_is_complete_json(tmp_path, monkeypatch):
    """Readers never see a torn state file mid-campaign."""
    real = farm.run_shard_job
    state_path = tmp_path / "state.json"

    def checks_checkpoint(job):
        if state_path.exists():
            state = load_state(state_path)     # parses, right format
            for shard in state["shards"]:
                assert shard["status"] in ("pending", "done")
        return real(job)

    monkeypatch.setattr(farm, "run_shard_job", checks_checkpoint)
    result = run_campaign(_config(), state_path)
    assert result.complete
    assert not list(tmp_path.glob(".*.tmp")), \
        "no temp files may survive the atomic replace"


# ----------------------------------------------------------------------
# Failure classes
# ----------------------------------------------------------------------

def test_fault_campaign_dedups_into_classes(tmp_path):
    corpus_dir = tmp_path / "corpus"
    config = _config(seed=3, programs=8, shards=3,
                     fault=("ADD", "SUB"))
    result = run_campaign(config, tmp_path / "state.json",
                          file_new_classes=True, corpus_dir=corpus_dir,
                          max_shrinks=6)
    assert result.complete
    assert result.mismatch_count > 6, \
        "a decoder fault should fail many cells"
    assert 0 < result.class_count < result.mismatch_count, \
        "classes must dedup mismatches"
    filed = sorted(corpus_dir.glob("campaign-*.json"))
    assert len(filed) == len(result.new_classes)
    for path in filed:
        payload = json.loads(path.read_text())
        assert payload["fingerprint"]
        assert payload["fingerprint"] in result.state["classes"]

    # A second campaign over the same range files nothing new: every
    # class fingerprint is already in the corpus directory.
    rerun = run_campaign(config, tmp_path / "state2.json",
                         file_new_classes=True, corpus_dir=corpus_dir,
                         max_shrinks=6)
    assert rerun.complete
    assert sorted(corpus_dir.glob("campaign-*.json")) == filed
    assert all(not record["filed"]
               for record in rerun.state["classes"].values())


def test_classification_is_deterministic(tmp_path):
    config = _config(seed=3, programs=6, shards=2, fault=("ADD", "SUB"))
    first = run_campaign(config, tmp_path / "a.json", max_shrinks=4)
    second = run_campaign(config, tmp_path / "b.json", max_shrinks=4)
    assert set(first.state["classes"]) == set(second.state["classes"])


# ----------------------------------------------------------------------
# Merged triage content + CLI
# ----------------------------------------------------------------------

def test_merged_triage_matches_run_conformance(tmp_path):
    """A campaign's mismatch list is the one-shot run's, re-sharded."""
    from repro.verify.campaign import PROFILES
    from repro.verify.diff import run_conformance

    config = _config(programs=6, shards=3, fault=("ADD", "SUB"))
    from repro.selftest.generator import Fault
    report = run_conformance(count=6, seed=0, targets=TARGETS,
                             config=PROFILES["small"],
                             fault=Fault("ADD", "SUB"))
    result = run_campaign(config, tmp_path / "state.json",
                          classify=False)
    triage = merged_triage(result.state)
    assert triage["mismatches"] == report.triage_json()["mismatches"]
    assert triage["class_counts"] == report.class_counts()
    assert triage["cells"] == report.cells_checked


def test_cli_campaign_smoke(tmp_path, capsys):
    from repro.verify.__main__ import main
    state = tmp_path / "state.json"
    out = tmp_path / "report.json"
    status = main(["campaign", "--programs", "6", "--shards", "3",
                   "--targets", "tc25", "--profile", "small",
                   "--state", str(state),
                   "--cache-dir", str(tmp_path / "cache"),
                   "--json", str(out)])
    assert status == 0
    text = capsys.readouterr().out
    assert "all cells agree with the IR oracle" in text
    payload = json.loads(out.read_text())
    assert payload["complete"] is True
    assert payload["programs_checked"] == 6
    assert payload["performance"]["programs_per_second"] > 0

    # Re-running without --resume must refuse (exit 2), with --resume
    # it is a no-op continue (exit 0).
    assert main(["campaign", "--programs", "6", "--shards", "3",
                 "--targets", "tc25", "--profile", "small",
                 "--state", str(state), "--no-cache"]) == 2
    assert main(["campaign", "--programs", "6", "--shards", "3",
                 "--targets", "tc25", "--profile", "small",
                 "--state", str(state), "--no-cache", "--resume"]) == 0


def test_cli_campaign_detects_fault(tmp_path, capsys):
    from repro.verify.__main__ import main
    status = main(["campaign", "--programs", "4", "--shards", "2",
                   "--targets", "tc25", "--profile", "small",
                   "--inject-fault", "ADD:SUB", "--no-cache",
                   "--max-shrink", "2",
                   "--state", str(tmp_path / "state.json"),
                   "--corpus-dir", str(tmp_path / "corpus"),
                   "--file-new-classes"])
    assert status == 0
    assert "DETECTED" in capsys.readouterr().out
    assert list((tmp_path / "corpus").glob("campaign-*.json"))
