"""The IR-level oracle: unit semantics + cross-check vs. the reference
interpreter (two independent evaluators must agree everywhere)."""

import random

import pytest

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.program import Block, Loop, Program, Symbol
from repro.ir.trees import Tree
from repro.verify.oracle import Oracle, OracleError
from repro.verify.progen import generate_inputs, generate_program


def _mac_program() -> Program:
    program = Program(name="mac")
    program.declare(Symbol(name="a", size=4, role="input"))
    program.declare(Symbol(name="b", size=4, role="input"))
    program.declare(Symbol(name="s", role="output"))
    dfg = DataFlowGraph()
    product = dfg.compute("mul", dfg.ref("a", ArrayIndex(1, 0)),
                          dfg.ref("b", ArrayIndex(1, 0)))
    dfg.write("s", dfg.compute("add", dfg.ref("s"), product))
    program.body = [Loop(var="i", count=4, body=[Block(dfg=dfg)])]
    return program


def test_mac_loop_accumulates():
    oracle = Oracle()
    env = oracle.run(_mac_program(),
                     {"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]})
    assert env["s"] == 10 + 40 + 90 + 160


def test_block_has_dataflow_semantics():
    # swap through a single block: both reads observe pre-block state
    program = Program(name="swap")
    program.declare(Symbol(name="x", role="input"))
    program.declare(Symbol(name="y", role="input"))
    program.declare(Symbol(name="x2", role="output"))
    dfg = DataFlowGraph()
    dfg.write("x2", dfg.ref("y"))
    dfg.write("y", dfg.ref("x"))
    program.body = [Block(dfg=dfg)]
    env = Oracle().run(program, {"x": 7, "y": 9})
    assert env["x2"] == 9 and env["y"] == 7


def test_inputs_wrap_to_word_width():
    program = Program(name="ident")
    program.declare(Symbol(name="x", role="input"))
    program.declare(Symbol(name="o", role="output"))
    dfg = DataFlowGraph()
    dfg.write("o", dfg.ref("x"))
    program.body = [Block(dfg=dfg)]
    env = Oracle().run(program, {"x": 0x8000})
    assert env["o"] == -0x8000      # same wrap the data memory applies


def test_out_of_bounds_read_raises():
    program = Program(name="oob")
    program.declare(Symbol(name="a", size=2, role="input"))
    program.declare(Symbol(name="o", role="output"))
    dfg = DataFlowGraph()
    dfg.write("o", dfg.ref("a", ArrayIndex(0, 5)))
    program.body = [Block(dfg=dfg)]
    with pytest.raises(OracleError):
        Oracle().run(program, {"a": [1, 2]})


def test_saturating_mode_clamps_stores():
    program = Program(name="satstore")
    program.declare(Symbol(name="x", role="input"))
    program.declare(Symbol(name="o", role="output"))
    dfg = DataFlowGraph()
    dfg.write("o", dfg.compute("add", dfg.ref("x"), dfg.ref("x")))
    program.body = [Block(dfg=dfg)]
    wrap = Oracle(FixedPointContext(16, Overflow.WRAP))
    sat = Oracle(FixedPointContext(16, Overflow.SATURATE))
    assert wrap.run(program, {"x": 0x7000})["o"] == \
        FixedPointContext(16).wrap(0x7000 * 2)
    assert sat.run(program, {"x": 0x7000})["o"] == 0x7FFF


def test_oracle_agrees_with_reference_interpreter():
    """The evaluator pair (explicit-stack oracle vs. recursive
    Program.run) must agree over the whole progen grammar."""
    fpc = FixedPointContext(16)
    oracle = Oracle(fpc)
    for seed in range(25):
        rng = random.Random(seed)
        program = generate_program(rng, seed)
        inputs = generate_inputs(rng, program)
        via_oracle = oracle.run(program, inputs)

        reference = program.initial_environment()
        for name, value in inputs.items():
            reference[name] = list(value) if isinstance(value, list) \
                else value
        program.run(reference, fpc)

        for name, symbol in program.symbols.items():
            if symbol.role == "output":
                assert via_oracle[name] == reference[name], (seed, name)


def test_evaluate_tree_matches_tree_evaluate():
    fpc = FixedPointContext(16)
    oracle = Oracle(fpc)
    rng = random.Random(42)
    operators = ["add", "sub", "mul", "and", "or", "xor", "neg", "abs"]
    env = {"x": 11, "y": -7, "z": 123}

    def random_tree(depth: int) -> Tree:
        if depth <= 0 or rng.random() < 0.3:
            if rng.random() < 0.4:
                return Tree.const(rng.randint(-50, 50))
            return Tree.ref(rng.choice(list(env)))
        name = rng.choice(operators)
        if name in ("neg", "abs"):
            return Tree.compute(name, random_tree(depth - 1))
        return Tree.compute(name, random_tree(depth - 1),
                            random_tree(depth - 1))

    for _ in range(60):
        tree = random_tree(4)
        assert oracle.evaluate_tree(tree, env) == \
            tree.evaluate(env, fpc)
