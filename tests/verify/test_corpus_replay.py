"""Replay every checked-in reproducer in ``tests/corpus/``.

Clean entries must pass the full conformance matrix; fault entries
must still be detected when their decoder fault is re-injected (and
must pass *without* it -- the program is innocent, the fault is the
bug).  On top of the matrix replay, every entry is replayed on each
simulator tier *individually* -- reference, fast, and jit -- so a
regression in one tier cannot hide behind the aggregate verdict, and
a corpus entry filed against one tier still exercises the other two.
This runs in tier-1; the open-ended fuzz loop is behind the ``slow``
marker.
"""

import pytest

from repro.selftest.generator import Fault, FaultySim
from repro.sim.harness import run_many
from repro.verify.corpus import load_corpus
from repro.verify.diff import (
    Cell, DEFAULT_TARGETS, SIM_NAMES, VerifySession, check_program,
    instruction_count, run_conformance, still_fails,
)

ENTRIES = load_corpus()

#: One pooled session for the whole module: targets, compilers and
#: oracles are caches whose hits are byte-identical to cold builds
#: (the VerifySession pooling contract), so sharing is free.
SESSION = VerifySession()


def _oracle_outputs(program, inputs, target_name):
    """Expected output symbols per the IR oracle at the target's width."""
    target = SESSION.target(target_name)
    env = SESSION.oracle(target.fpc.width).run(program, inputs)
    return {name: env[name] for name, symbol in program.symbols.items()
            if symbol.role == "output" and name in env}


def _tier_outputs(program, inputs, target_name, sim, fault=None):
    """Output symbols from compiling and running on ONE simulator tier."""
    target = SESSION.target(target_name)
    compiled = SESSION.compiler("record", target_name).compile(program)
    run_target = FaultySim(target, fault) if fault else None
    (env, _state), = run_many(compiled, [inputs], sim=sim,
                              target=run_target)
    return {name: env[name] for name, symbol in program.symbols.items()
            if symbol.role == "output" and name in env}


def test_corpus_is_checked_in():
    assert ENTRIES, "tests/corpus/ must contain reproducers"
    assert any(entry.fault for entry in ENTRIES)
    assert any(not entry.fault for entry in ENTRIES)


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays(entry):
    program = entry.program
    if entry.fault is None:
        verdict = check_program(program, [entry.inputs])
        assert verdict.ok, [o.describe() for o in verdict.mismatches]
        return

    fault = Fault(*entry.fault)
    cell = Cell(**entry.cell) if entry.cell else None
    targets = (cell.target,) if cell else ("tc25",)
    assert still_fails(program, [entry.inputs], targets=targets,
                       fault=fault, cell=cell), \
        f"{entry.name}: recorded fault no longer detected"
    assert check_program(program, [entry.inputs], targets=targets).ok, \
        f"{entry.name}: reproducer fails even without the fault"


@pytest.mark.parametrize("sim", SIM_NAMES)
@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays_per_tier(entry, sim):
    """Each tier -- reference, fast, AND jit -- replays every entry."""
    program = entry.program
    if entry.fault is None:
        for target_name in DEFAULT_TARGETS:
            expected = _oracle_outputs(program, entry.inputs, target_name)
            got = _tier_outputs(program, entry.inputs, target_name, sim)
            assert got == expected, \
                f"{entry.name}: {sim} tier diverges on {target_name}"
        return

    # Fault entries: the decoder fault is injected at decode level, so
    # every tier must diverge from the oracle with it -- and agree
    # without it.
    target_name = entry.cell["target"] if entry.cell else "tc25"
    expected = _oracle_outputs(program, entry.inputs, target_name)
    clean = _tier_outputs(program, entry.inputs, target_name, sim)
    assert clean == expected, \
        f"{entry.name}: {sim} tier fails even without the fault"
    faulty = _tier_outputs(program, entry.inputs, target_name, sim,
                           fault=Fault(*entry.fault))
    assert faulty != expected, \
        f"{entry.name}: {sim} tier does not detect the recorded fault"


@pytest.mark.parametrize(
    "entry", [e for e in ENTRIES if e.fault], ids=lambda e: e.name)
def test_fault_reproducers_are_minimal(entry):
    target = entry.cell["target"] if entry.cell else "tc25"
    size = instruction_count(entry.program, target_name=target)
    assert size <= 5, \
        f"{entry.name}: {size} instructions is not a minimal reproducer"


@pytest.mark.slow
def test_fuzz_matrix_is_clean():
    """Open-ended fuzzing across the whole matrix (slow, opt-in)."""
    report = run_conformance(count=25, seed=0)
    assert not report.mismatches, report.summary()


@pytest.mark.slow
def test_cli_smoke(capsys):
    from repro.verify.__main__ import main
    assert main(["--count", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "all cells agree with the IR oracle" in out
