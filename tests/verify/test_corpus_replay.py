"""Replay every checked-in reproducer in ``tests/corpus/``.

Clean entries must pass the full conformance matrix; fault entries
must still be detected when their decoder fault is re-injected (and
must pass *without* it -- the program is innocent, the fault is the
bug).  This runs in tier-1; the open-ended fuzz loop is behind the
``slow`` marker.
"""

import pytest

from repro.selftest.generator import Fault
from repro.verify.corpus import load_corpus
from repro.verify.diff import (
    Cell, check_program, instruction_count, run_conformance, still_fails,
)

ENTRIES = load_corpus()


def test_corpus_is_checked_in():
    assert ENTRIES, "tests/corpus/ must contain reproducers"
    assert any(entry.fault for entry in ENTRIES)
    assert any(not entry.fault for entry in ENTRIES)


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays(entry):
    program = entry.program
    if entry.fault is None:
        verdict = check_program(program, [entry.inputs])
        assert verdict.ok, [o.describe() for o in verdict.mismatches]
        return

    fault = Fault(*entry.fault)
    cell = Cell(**entry.cell) if entry.cell else None
    targets = (cell.target,) if cell else ("tc25",)
    assert still_fails(program, [entry.inputs], targets=targets,
                       fault=fault, cell=cell), \
        f"{entry.name}: recorded fault no longer detected"
    assert check_program(program, [entry.inputs], targets=targets).ok, \
        f"{entry.name}: reproducer fails even without the fault"


@pytest.mark.parametrize(
    "entry", [e for e in ENTRIES if e.fault], ids=lambda e: e.name)
def test_fault_reproducers_are_minimal(entry):
    target = entry.cell["target"] if entry.cell else "tc25"
    size = instruction_count(entry.program, target_name=target)
    assert size <= 5, \
        f"{entry.name}: {size} instructions is not a minimal reproducer"


@pytest.mark.slow
def test_fuzz_matrix_is_clean():
    """Open-ended fuzzing across the whole matrix (slow, opt-in)."""
    report = run_conformance(count=25, seed=0)
    assert not report.mismatches, report.summary()


@pytest.mark.slow
def test_cli_smoke(capsys):
    from repro.verify.__main__ import main
    assert main(["--count", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "all cells agree with the IR oracle" in out
