"""Parallel conformance + artifact cache: same triage, fewer compiles.

The promises under test:

- ``run_conformance(jobs=N)`` produces a byte-identical triage report
  to the serial loop for any worker count, with or without the
  persistent artifact cache, warm or cold (``ConformanceReport
  .triage_json``);
- every degradation path -- a worker raising (even an unpicklable
  exception), the pool failing to start, a cache entry corrupted on
  disk mid-run -- ends in the same triage result as a clean serial
  run, never a crash;
- a second run over an unchanged tree performs **zero** compiles
  (100% artifact-cache hits), including through the CLI.

Parallel runs force ``max_workers=2`` so job/verdict pickling is
genuinely exercised even on a single-core machine.
"""

from __future__ import annotations

import json
import logging
import pickle
import random

import pytest

import repro.cache
from repro.evalx import farm
from repro.evalx.farm import (
    VerifyJob, VerifyResult, clear_verify_session, run_verify_job,
    verify_many,
)
from repro.selftest.generator import Fault
from repro.verify.corpus import program_to_spec
from repro.verify.diff import run_conformance
from repro.verify.progen import generate_inputs, generate_program


@pytest.fixture(autouse=True)
def _no_leaked_cache():
    """Every test starts and ends with caching off."""
    repro.cache.configure(None)
    yield
    repro.cache.configure(None)


def _triage(report) -> str:
    return json.dumps(report.triage_json(), sort_keys=True)


def _job(seed: int = 11, targets=("tc25",), fault=None) -> VerifyJob:
    rng = random.Random(seed)
    program = generate_program(rng, seed)
    inputs = tuple(generate_inputs(rng, program) for _ in range(2))
    return VerifyJob(program_spec=program_to_spec(program),
                     input_sets=inputs, targets=tuple(targets),
                     fault=fault, seed=seed)


# ----------------------------------------------------------------------
# Triage equality: serial == parallel == cached
# ----------------------------------------------------------------------

def test_parallel_triage_matches_serial():
    serial = run_conformance(count=3, seed=0, targets=("tc25", "risc16"))
    parallel = run_conformance(count=3, seed=0,
                               targets=("tc25", "risc16"), jobs=2)
    assert _triage(parallel) == _triage(serial)
    assert [v.name for v in parallel.verdicts] \
        == [v.name for v in serial.verdicts]
    assert parallel.jobs == 2 and serial.jobs == 1


def test_parallel_detects_injected_fault_like_serial():
    fault = Fault("ADD", "SUB")
    serial = run_conformance(count=4, seed=3, targets=("tc25",),
                             fault=fault)
    parallel = run_conformance(count=4, seed=3, targets=("tc25",),
                               fault=fault, jobs=2)
    assert serial.mismatches, "the seeded fault must be detected"
    assert _triage(parallel) == _triage(serial)


def test_warm_cache_triage_matches_cold(tmp_path):
    cold_plain = run_conformance(count=2, seed=0, targets=("tc25",))
    repro.cache.configure(tmp_path / "cache")
    cold = run_conformance(count=2, seed=0, targets=("tc25",))
    warm = run_conformance(count=2, seed=0, targets=("tc25",))
    assert _triage(cold_plain) == _triage(cold) == _triage(warm)
    assert cold.compile_counts()["compiles"] > 0
    assert warm.compile_counts() == {
        "compiles": 0,
        "artifact_hits": cold.compile_counts()["compiles"]}


def test_second_run_compiles_zero_programs(tmp_path):
    """Acceptance: an unchanged tree never compiles twice."""
    repro.cache.configure(tmp_path / "cache")
    first = run_conformance(count=3, seed=0, jobs=2)
    second = run_conformance(count=3, seed=0, jobs=2)
    assert first.compile_counts()["compiles"] > 0
    counts = second.compile_counts()
    assert counts["compiles"] == 0
    assert counts["artifact_hits"] == first.compile_counts()["compiles"]
    assert _triage(first) == _triage(second)


# ----------------------------------------------------------------------
# Farm-level verify jobs
# ----------------------------------------------------------------------

def test_verify_job_pickles_small():
    job = _job()
    assert pickle.loads(pickle.dumps(job)) == job


def test_verify_many_order_and_serial_parallel_equality():
    jobs = [_job(seed) for seed in (5, 6, 7)]
    clear_verify_session()
    serial = verify_many(jobs, parallel=False)
    parallel = verify_many(jobs, parallel=True, max_workers=2)
    assert [r.job for r in serial] == jobs
    assert [r.job for r in parallel] == jobs
    for left, right in zip(serial, parallel):
        assert left.ok and right.ok
        assert [o.describe() for o in left.verdict.outcomes] \
            == [o.describe() for o in right.verdict.outcomes]


@pytest.mark.parametrize("parallel", [False, True],
                         ids=["serial", "parallel"])
def test_worker_error_travels_as_string(parallel):
    """A failing job reports in order instead of killing the farm.

    The broken spec raises inside the worker; only the stringified
    error crosses the process boundary, so even exception types that
    cannot pickle report cleanly.
    """
    bad = VerifyJob(program_spec={"name": "broken", "symbols": [],
                                 "body": [{"kind": "no-such-kind"}]},
                    input_sets=({},), targets=("tc25",))
    jobs = [_job(5), bad, _job(7)]
    results = verify_many(jobs, parallel=parallel, max_workers=2)
    assert [r.job for r in results] == jobs
    good_first, broken, good_last = results
    assert good_first.ok and good_last.ok
    assert not broken.ok and broken.verdict is None
    assert broken.error_type == "ValueError"
    assert "no-such-kind" in broken.error
    # identical straight from run_verify_job (the serial fallback path):
    direct = run_verify_job(bad)
    assert (direct.error_type, direct.error) \
        == (broken.error_type, broken.error)


def test_pool_startup_failure_falls_back_to_serial(monkeypatch):
    class _RefusesToStart:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this environment")

    jobs = [_job(5), _job(6)]
    clear_verify_session()
    expected = verify_many(jobs, parallel=False)
    monkeypatch.setattr(farm.concurrent.futures, "ProcessPoolExecutor",
                        _RefusesToStart)
    clear_verify_session()
    degraded = verify_many(jobs, parallel=True, max_workers=2)
    assert all(r.ok for r in degraded)
    assert [
        [o.describe() for o in r.verdict.outcomes] for r in degraded
    ] == [
        [o.describe() for o in r.verdict.outcomes] for r in expected
    ]


def test_run_conformance_jobs_survive_pool_failure(monkeypatch):
    serial = run_conformance(count=2, seed=0, targets=("tc25",))

    class _RefusesToStart:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this environment")

    monkeypatch.setattr(farm.concurrent.futures, "ProcessPoolExecutor",
                        _RefusesToStart)
    degraded = run_conformance(count=2, seed=0, targets=("tc25",),
                               jobs=2)
    assert _triage(degraded) == _triage(serial)


# ----------------------------------------------------------------------
# Cache corruption mid-run
# ----------------------------------------------------------------------

def test_corrupt_cache_entries_recompile_with_warning(tmp_path, caplog):
    cache = repro.cache.configure(tmp_path / "cache")
    clean = run_conformance(count=2, seed=0, targets=("tc25",))
    for path in cache.root.glob("*/*.pkl"):
        path.write_bytes(b"flipped bits, truncated writes, bit rot")
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        rerun = run_conformance(count=2, seed=0, targets=("tc25",))
    assert _triage(rerun) == _triage(clean)
    assert rerun.compile_counts()["compiles"] \
        == clean.compile_counts()["compiles"], \
        "every corrupt entry must be recompiled"
    assert cache.stats.corrupt_entries > 0
    assert any("corrupt" in record.message for record in caplog.records)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------

def _cli(tmp_path, name, *extra):
    from repro.verify.__main__ import main
    out = tmp_path / f"{name}.json"
    status = main(["--count", "2", "--seed", "0", "--targets", "tc25",
                   "--cache-dir", str(tmp_path / "cli-cache"),
                   "--json", str(out), *extra])
    assert status == 0
    return json.loads(out.read_text())


def test_cli_second_invocation_is_all_hits(tmp_path):
    first = _cli(tmp_path, "first", "--jobs", "2")
    second = _cli(tmp_path, "second", "--jobs", "2")
    assert first["performance"]["cache"]["compiles"] > 0
    assert second["performance"]["cache"]["compiles"] == 0
    assert second["performance"]["cache"]["hit_rate"] == 1.0
    assert second["performance"]["programs_per_second"] > 0
    drop = ("elapsed_seconds", "performance")
    assert {k: v for k, v in first.items() if k not in drop} \
        == {k: v for k, v in second.items() if k not in drop}


def test_cli_no_cache_disables_artifact_store(tmp_path):
    _cli(tmp_path, "seed-the-cache")          # warm the cache dir
    report = _cli(tmp_path, "uncached", "--no-cache")
    assert report["performance"]["cache"]["compiles"] > 0
    assert report["performance"]["cache"]["artifact_hits"] == 0
    assert report["performance"]["jobs"] == 1
    assert report["performance"]["stage_timings_seconds"]
