"""Failure-class fingerprints: normalization, stability, dedup filing.

The fingerprint's job is collapsing "one bug, thousands of generated
witnesses" down to one class: it must be blind to generator accidents
(symbol names, program names, which large constant a seed happened to
draw) and sharp on everything structural (operators, shapes, cells,
triage classes).  The filing tests pin the consumer-visible promise:
a class already in the corpus directory is never filed twice, by the
campaign engine or by the single-run ``--write-corpus`` path.
"""

from __future__ import annotations

import copy

import pytest

import repro.cache
from repro.verify.corpus import (
    CorpusEntry, failure_fingerprint, load_corpus, normalize_spec,
)

CELL = {"compiler": "record", "target": "tc25", "sim": "fast"}


@pytest.fixture(autouse=True)
def _no_leaked_cache():
    repro.cache.configure(None)
    yield
    repro.cache.configure(None)


def _spec(name="prog", x="x", y="y", const=37, op="ADD"):
    """A one-block program spec: ``y = x <op> const``."""
    return {
        "name": name,
        "symbols": [
            {"name": x, "size": 1, "role": "input", "init": None},
            {"name": y, "size": 1, "role": "output", "init": None},
        ],
        "body": [{"kind": "block", "writes": [{
            "symbol": y, "index": None,
            "expr": {"kind": "compute", "op": op, "children": [
                {"kind": "ref", "symbol": x, "index": None},
                {"kind": "const", "value": const},
            ]},
        }]}],
    }


# ----------------------------------------------------------------------
# normalize_spec
# ----------------------------------------------------------------------

def test_normalization_ignores_generator_accidents():
    """Names and large-constant values are generator noise."""
    a = normalize_spec(_spec(name="fuzz-17", x="v3", y="acc", const=37))
    b = normalize_spec(_spec(name="fuzz-99", x="in0", y="out7",
                             const=-1400))
    assert a == b
    assert "name" not in a


def test_normalization_keeps_structure():
    base = normalize_spec(_spec())
    assert normalize_spec(_spec(op="SUB")) != base
    assert normalize_spec(_spec(const=0)) != base, \
        "shrinker-relevant constants (-1, 0, 1) must stay distinct"
    assert normalize_spec(_spec(const=1)) != normalize_spec(_spec(const=0))


def test_normalization_renames_in_first_use_order():
    normalized = normalize_spec(_spec(x="zulu", y="alpha"))
    write = normalized["body"][0]["writes"][0]
    assert write["symbol"] == "s0", "written symbol is used first"
    assert write["expr"]["children"][0]["symbol"] == "s1"
    assert [entry["name"] for entry in normalized["symbols"]] \
        == ["s0", "s1"]


def test_normalization_does_not_mutate_input():
    spec = _spec()
    snapshot = copy.deepcopy(spec)
    normalize_spec(spec)
    assert spec == snapshot


# ----------------------------------------------------------------------
# failure_fingerprint
# ----------------------------------------------------------------------

def test_fingerprint_stable_across_accidents():
    a = failure_fingerprint("compiler", CELL, _spec(x="v3", const=37))
    b = failure_fingerprint("compiler", CELL, _spec(x="w9", const=50))
    assert a == b
    assert len(a) == 16 and int(a, 16) >= 0


def test_fingerprint_separates_classes_cells_and_shapes():
    base = failure_fingerprint("compiler", CELL, _spec())
    assert failure_fingerprint("overflow", CELL, _spec()) != base
    other_cell = dict(CELL, sim="jit")
    assert failure_fingerprint("compiler", other_cell, _spec()) != base
    assert failure_fingerprint("compiler", CELL, _spec(op="MUL")) != base


def test_corpus_entry_fingerprint_round_trips():
    entry = CorpusEntry(name="t", seed=7, program_spec=_spec(),
                        cell=CELL, mismatch_class="compiler",
                        fingerprint=failure_fingerprint(
                            "compiler", CELL, _spec()))
    reloaded = CorpusEntry.from_json(entry.to_json())
    assert reloaded.fingerprint == entry.fingerprint
    assert reloaded.class_fingerprint() == entry.fingerprint


def test_legacy_entry_derives_fingerprint():
    """Entries filed before the fingerprint field still dedup."""
    entry = CorpusEntry(name="old", seed=1, program_spec=_spec(),
                        cell=CELL, mismatch_class="compiler")
    payload = entry.to_json()
    payload["fingerprint"] = ""
    reloaded = CorpusEntry.from_json(payload)
    assert reloaded.class_fingerprint() \
        == failure_fingerprint("compiler", CELL, _spec())


# ----------------------------------------------------------------------
# Dedup filing (satellite: corpus auto-filing dedups by class)
# ----------------------------------------------------------------------

def test_write_corpus_files_each_class_once(tmp_path, capsys):
    """The same fault re-found on a second run files nothing new."""
    from repro.verify.__main__ import main

    corpus_dir = tmp_path / "corpus"
    argv = ["--count", "4", "--seed", "1", "--targets", "tc25",
            "--inject-fault", "ADD:SUB", "--write-corpus",
            "--corpus-dir", str(corpus_dir), "--max-shrink", "3",
            "--no-cache"]
    assert main(list(argv)) == 0
    capsys.readouterr()
    first = sorted(corpus_dir.glob("*.json"))
    assert first, "the seeded fault must file at least one reproducer"
    fingerprints = [entry.class_fingerprint()
                    for entry in load_corpus(corpus_dir)]
    assert all(fingerprints), "filed entries must carry fingerprints"
    assert len(set(fingerprints)) == len(fingerprints), \
        "one run must not file the same class twice"

    assert main(list(argv)) == 0
    out = capsys.readouterr().out
    assert sorted(corpus_dir.glob("*.json")) == first, \
        "a re-run must not file duplicate classes"
    assert "not filed" in out
