"""Grammar-directed program generator: determinism, well-typedness,
cross-target compilability, and historical selftest compatibility."""

import random

from repro.codegen.pipeline import RecordCompiler
from repro.ir.program import Block, Loop
from repro.verify.corpus import program_to_spec
from repro.verify.diff import DEFAULT_TARGETS, make_target
from repro.verify.progen import (
    generate_inputs, generate_program, straight_line_program,
)


def test_generation_is_deterministic():
    first = generate_program(random.Random(5), 5)
    second = generate_program(random.Random(5), 5)
    assert program_to_spec(first) == program_to_spec(second)


def test_seeds_produce_distinct_programs():
    specs = {str(program_to_spec(generate_program(random.Random(s), s)))
             for s in range(10)}
    assert len(specs) > 1


def test_programs_are_well_typed():
    for seed in range(12):
        rng = random.Random(seed)
        program = generate_program(rng, seed)
        assert program.outputs(), seed
        # every referenced symbol is declared with a compatible shape
        inputs = generate_inputs(rng, program)
        for symbol in program.inputs():
            assert symbol.name in inputs
            if symbol.is_array:
                assert len(inputs[symbol.name]) == symbol.size


def test_grammar_exercises_loops_and_saturation():
    saw_loop = saw_sat = False
    for seed in range(20):
        program = generate_program(random.Random(seed), seed)
        spec = str(program_to_spec(program))
        saw_loop = saw_loop or "'loop'" in spec
        saw_sat = saw_sat or "'sat'" in spec
    assert saw_loop and saw_sat


def test_programs_compile_on_every_target():
    for seed in range(6):
        program = generate_program(random.Random(seed), seed)
        for target_name in DEFAULT_TARGETS:
            compiled = RecordCompiler(make_target(target_name)) \
                .compile(program)
            assert compiled.code, (seed, target_name)


def test_straight_line_program_shape():
    """The selftest generator's program family: one block, scalar IO,
    deterministic per (rng, index)."""
    program = straight_line_program(random.Random(3), 7)
    assert program.name == "selftest7"
    assert len(program.body) == 1 and isinstance(program.body[0], Block)
    assert not any(isinstance(item, Loop) for item in program.body)
    assert [s.name for s in program.outputs()] == \
        [f"o{i}" for i in range(len(program.outputs()))]
    again = straight_line_program(random.Random(3), 7)
    assert program_to_spec(program) == program_to_spec(again)


def test_straight_line_rng_contract_is_stable():
    """The selftest fault-coverage thresholds depend on the *exact*
    random sequence; pin a fingerprint so a grammar change cannot
    silently shift the selftest distribution."""
    spec = program_to_spec(straight_line_program(random.Random(0), 0))
    ops = []

    def scan(expr):
        if expr["kind"] == "compute":
            ops.append(expr["op"])
            for child in expr["children"]:
                scan(child)

    for item in spec["body"]:
        for write in item["writes"]:
            scan(write["expr"])
    assert ops == ["neg", "or", "xor", "and", "or", "xor", "sub", "abs"]
