"""The conformance matrix: clean agreement, fault detection, triage
classification, and the shrink-to-minimal-reproducer acceptance path."""

import random

import pytest

from repro.selftest.generator import Fault
from repro.verify.diff import (
    MismatchClass, check_program, instruction_count, run_conformance,
    still_fails,
)
from repro.verify.progen import generate_inputs, generate_program
from repro.verify.shrink import shrink_program


def test_small_matrix_is_clean():
    report = run_conformance(count=3, seed=0,
                             targets=("tc25", "risc16"))
    assert not report.mismatches, report.summary()
    assert report.cells_checked > 0
    assert not report.budget_exhausted


def test_report_json_roundtrips():
    report = run_conformance(count=2, seed=1, targets=("tc25",))
    payload = report.to_json()
    assert payload["programs"] == 2
    assert payload["class_counts"] == {}
    assert payload["mismatches"] == []


def test_budget_stops_early():
    report = run_conformance(count=50, seed=0, targets=("tc25",),
                             budget_seconds=0.0)
    assert report.budget_exhausted
    assert len(report.verdicts) < 50


def test_injected_decoder_fault_is_detected():
    fault = Fault("ADD", "SUB")
    report = run_conformance(count=6, seed=3, targets=("tc25",),
                             fault=fault)
    assert report.mismatches, \
        "an ADD-executes-as-SUB decoder fault must not survive 6 programs"
    # Both simulators decode through the same faulty target, so they
    # agree with each other and disagree with the oracle: the triage
    # class must point at the compiled-code side, not the simulators.
    classes = {outcome.mismatch_class
               for _verdict, outcome in report.mismatches}
    assert classes <= {MismatchClass.COMPILER, MismatchClass.OVERFLOW}


def test_fault_shrinks_to_minimal_reproducer():
    """Acceptance: a seeded decoder fault shrinks to a reproducer of at
    most 5 instructions."""
    fault = Fault("ADD", "SUB")
    report = run_conformance(count=6, seed=3, targets=("tc25",),
                             fault=fault)
    verdict, outcome = report.mismatches[0]
    rng = random.Random(verdict.seed)
    program = generate_program(rng, verdict.seed % 1_000_000)
    input_sets = [generate_inputs(rng, program) for _ in range(2)]
    cell = outcome.cell if outcome.cell.sim != "*" else None

    small = shrink_program(
        program,
        lambda candidate: still_fails(candidate, input_sets,
                                      targets=("tc25",), fault=fault,
                                      cell=cell))
    size = instruction_count(small, target_name="tc25")
    assert size <= 5, f"reproducer still has {size} instructions"
    # the minimized program must still expose the fault ...
    assert still_fails(small, input_sets, targets=("tc25",), fault=fault)
    # ... and be clean without it (the bug is the fault, not the program)
    assert check_program(small, input_sets, targets=("tc25",)).ok


def test_still_fails_requires_the_pinned_cell():
    rng = random.Random(11)
    program = generate_program(rng, 11)
    inputs = [generate_inputs(rng, program)]
    assert not still_fails(program, inputs, targets=("tc25",))


def test_compile_error_is_classified_not_raised():
    """A program using an operator some target cannot cover must land
    as a compile-error cell, not an exception."""
    from repro.ir.dfg import DataFlowGraph
    from repro.ir.program import Block, Program, Symbol

    program = Program(name="needs-min")
    program.declare(Symbol(name="x", role="input"))
    program.declare(Symbol(name="y", role="input"))
    program.declare(Symbol(name="o", role="output"))
    dfg = DataFlowGraph()
    dfg.write("o", dfg.compute("min", dfg.ref("x"), dfg.ref("y")))
    program.body = [Block(dfg=dfg)]

    verdict = check_program(program, [{"x": 3, "y": 9}])
    for outcome in verdict.outcomes:
        assert outcome.ok or \
            outcome.mismatch_class == MismatchClass.COMPILE_ERROR, \
            outcome.describe()
