"""Unit tests for the M56 target model."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, LabelRef, Mem, Reg
from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.dfl import compile_dfl
from repro.sim.harness import run_compiled
from repro.sim.machine import SimulationError
from repro.targets.m56 import M56, X_BANK_BASE, Y_BANK_BASE


def ins(name, *operands, parallel=()):
    return AsmInstr(opcode=name, operands=tuple(operands),
                    parallel=tuple(parallel))


def xdirect(address):
    return Mem(symbol="v", mode="direct", address=address, bank="x")


@pytest.fixture()
def target():
    return M56()


@pytest.fixture()
def state(target):
    return target.initial_state()


def test_move_and_alu(target, state):
    state.mem[3] = 11
    target.execute(state, ins("MOVE", Reg("x0"), xdirect(3)))
    assert state.regs["x0"] == 11
    target.execute(state, ins("MOVEI", Reg("y0"), Imm(5)))
    target.execute(state, ins("MPY", Reg("x0"), Reg("y0"), Reg("a")))
    assert state.regs["a"] == 55
    target.execute(state, ins("MAC", Reg("x0"), Reg("y0"), Reg("a")))
    assert state.regs["a"] == 110
    target.execute(state, ins("MACN", Reg("x0"), Reg("y0"), Reg("a")))
    assert state.regs["a"] == 55


def test_fractional_multiplier(target, state):
    state.regs["x0"] = 16384     # 0.5 in Q15
    state.regs["y0"] = 2000
    target.execute(state, ins("MPYF", Reg("x0"), Reg("y0"), Reg("a")))
    assert state.regs["a"] == (16384 * 2000) >> 15


def test_parallel_semantics_read_before_write(target, state):
    # MAC reads old x0/y0 while the packed moves load new ones
    state.regs.update({"x0": 2, "y0": 3, "a": 0, "r1": 10, "r5": 600})
    state.mem[10] = 7
    state.mem[600] = 8
    host = ins("MAC", Reg("x0"), Reg("y0"), Reg("a"), parallel=(
        ins("MOVE", Reg("x0"), Mem("p", mode="indirect", areg="r1",
                                   post_modify=1, bank="x")),
        ins("MOVE", Reg("y0"), Mem("q", mode="indirect", areg="r5",
                                   post_modify=1, bank="y")),
    ))
    target.execute(state, host)
    assert state.regs["a"] == 6          # used OLD x0*y0
    assert state.regs["x0"] == 7         # moves committed
    assert state.regs["y0"] == 8
    assert state.regs["r1"] == 11 and state.regs["r5"] == 601


def test_hardware_loop(target, state):
    target.execute(state, ins("DO", Imm(3)))
    assert state.loop_stack == [2]
    end = ins("LOOPEND", LabelRef("D0"))
    assert target.execute(state, end) == "D0"
    assert target.execute(state, end) == "D0"
    assert target.execute(state, end) is None
    assert state.loop_stack == []


def test_loopend_without_do_rejected(target, state):
    with pytest.raises(SimulationError):
        target.execute(state, ins("LOOPEND", LabelRef("X")))


def test_sat_instruction(target, state):
    state.regs["a"] = 1 << 20
    target.execute(state, ins("SATA", Reg("a")))
    assert state.regs["a"] == 32767


def test_bank_bases_do_not_overlap():
    assert Y_BANK_BASE > X_BANK_BASE
    assert Y_BANK_BASE >= 512


def test_bank_assignment_separates_multiply_operands(target):
    program = compile_dfl("""
program p;
input a, b; output y;
begin
  y := a * b;
end.
""")
    compiled = RecordCompiler(target).compile(program)
    address_a = compiled.memory_map.addresses["a"]
    address_b = compiled.memory_map.addresses["b"]
    in_y_bank = [addr >= Y_BANK_BASE for addr in (address_a, address_b)]
    assert in_y_bank.count(True) == 1    # one each side


def test_single_bank_option(target):
    program = compile_dfl("""
program p;
input a, b; output y;
begin
  y := a * b;
end.
""")
    options = RecordOptions(bank_assignment="single")
    compiled = RecordCompiler(target, options).compile(program)
    for name in ("a", "b", "y"):
        assert compiled.memory_map.addresses[name] < Y_BANK_BASE


def test_compaction_reduces_words(target):
    program = compile_dfl("""
program p;
const N = 8;
input a[2*N], b[2*N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[2*i]*b[2*i] + a[2*i+1]*b[2*i+1];
  end;
  y := acc;
end.
""")
    packed = RecordCompiler(target).compile(program)
    unpacked = RecordCompiler(
        target, RecordOptions(compaction="none")).compile(program)
    assert packed.words() < unpacked.words()
    # and both compute the same result
    inputs = {"a": list(range(16)), "b": list(range(16, 32))}
    out_packed, _ = run_compiled(packed, inputs)
    out_unpacked, _ = run_compiled(unpacked, inputs)
    assert out_packed["y"] == out_unpacked["y"]


def test_optimal_compaction_never_worse(target):
    program = compile_dfl("""
program p;
input a, b, c, d; output y, z;
begin
  y := a*b + c*d;
  z := a*d - c*b;
end.
""")
    greedy = RecordCompiler(
        target, RecordOptions(compaction="greedy")).compile(program)
    optimal = RecordCompiler(
        target, RecordOptions(compaction="optimal")).compile(program)
    assert optimal.words() <= greedy.words()


def test_offset_assignment_reduces_pointer_loads(target):
    # many scalars touched in a regular order: SOA should beat absolute
    source = """
program p;
input a, b, c, d, e, f; output y;
begin
  y := a + b + c + d + e + f + a + b + c + d;
end.
"""
    program = compile_dfl(source)
    soa = RecordCompiler(
        target, RecordOptions(offset_assignment="liao")).compile(program)
    absolute = RecordCompiler(
        target,
        RecordOptions(offset_assignment="absolute")).compile(program)
    assert soa.words() <= absolute.words()
    outputs_soa, _ = run_compiled(soa, {"a": 1, "b": 2, "c": 3, "d": 4,
                                        "e": 5, "f": 6})
    outputs_abs, _ = run_compiled(absolute, {"a": 1, "b": 2, "c": 3,
                                             "d": 4, "e": 5, "f": 6})
    assert outputs_soa["y"] == outputs_abs["y"] == 31


def test_goa_offset_strategy_is_correct(target):
    source = """
program p;
input a, b, c, d, e, f; output y;
begin
  y := a + b + c + d + e + f + a + b;
end.
"""
    program = compile_dfl(source)
    compiled = RecordCompiler(
        target, RecordOptions(offset_assignment="goa")).compile(program)
    inputs = {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6}
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == 24


def test_unknown_opcode(target, state):
    with pytest.raises(SimulationError):
        target.execute(state, ins("FROB"))
