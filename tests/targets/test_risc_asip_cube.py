"""Unit tests for Risc16, the ASIP generator and the processor cube."""

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.asip import Asip, AsipParams
from repro.targets.cube import CubePosition, classify, cube_table
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)

SPILL_HEAVY = """
program pressure;
input a, b, c, d, e, f, g, h;
output y;
begin
  y := (a*b + c*d) ^ (e*f + g*h) ^ (a*d + c*b) ^ (e*h + g*f);
end.
"""


def reference(source, inputs):
    program = compile_dfl(source)
    env = program.initial_environment()
    env.update(inputs)
    program.run(env, FPC)
    return program, env


# ----------------------------------------------------------------------
# Risc16
# ----------------------------------------------------------------------

def test_risc_three_address_shape():
    program = compile_dfl("""
program p;
input a, b; output y;
begin
  y := a * b + 7;
end.
""")
    compiled = RecordCompiler(Risc16()).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    assert "LW" in opcodes and "MUL" in opcodes and "SW" in opcodes
    # all virtual registers were renamed to physical ones
    from repro.codegen.asm import Reg
    for instr in compiled.code.instructions():
        for operand in instr.operands:
            if isinstance(operand, Reg):
                assert not operand.name.startswith("v")


def test_risc_spills_under_pressure_and_stays_correct():
    inputs = {name: value for value, name in
              enumerate("abcdefgh", start=3)}
    program, env = reference(SPILL_HEAVY, inputs)
    compiled = RecordCompiler(Risc16()).compile(program)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"]


def test_risc_loop_with_pointer_arithmetic():
    source = """
program p;
const N = 5;
input a[N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[i];
  end;
  y := acc;
end.
"""
    inputs = {"a": [1, 2, 3, 4, 5]}
    program, env = reference(source, inputs)
    compiled = RecordCompiler(Risc16()).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    assert "BNEZ" in opcodes and "ADDI" in opcodes
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"] == 15


# ----------------------------------------------------------------------
# ASIP generator
# ----------------------------------------------------------------------

SUM_SRC = """
program sums;
const N = 8;
input a[N], b[N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[i] * b[i];
  end;
  y := acc;
end.
"""


def compile_asip(params):
    program = compile_dfl(SUM_SRC)
    compiled = RecordCompiler(Asip(params)).compile(program)
    return program, compiled


def test_asip_default_matches_reference():
    inputs = {"a": list(range(8)), "b": [2] * 8}
    program, compiled = compile_asip(AsipParams())
    env = program.initial_environment()
    env.update({"a": list(inputs["a"]), "b": list(inputs["b"])})
    program.run(env, FPC)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"]


def test_removing_features_costs_cycles():
    inputs = {"a": list(range(8)), "b": [3] * 8}
    results = {}
    for label, params in [
        ("full", AsipParams()),
        ("no_repeat", AsipParams(has_repeat=False)),
        ("no_mac", AsipParams(has_mac=False, has_repeat=False)),
    ]:
        program, compiled = compile_asip(params)
        outputs, state = run_compiled(compiled, inputs)
        env = program.initial_environment()
        env.update({"a": list(inputs["a"]), "b": list(inputs["b"])})
        program.run(env, FPC)
        assert outputs["y"] == env["y"], label
        results[label] = state.cycles
    assert results["full"] < results["no_repeat"] <= results["no_mac"]


def test_asip_without_multiplier_rejects_products():
    from repro.codegen.selector import SelectionError
    program = compile_dfl("""
program p;
input a, b; output y;
begin y := a * b; end.
""")
    with pytest.raises(SelectionError):
        RecordCompiler(Asip(AsipParams(has_multiplier=False))
                       ).compile(program)


def test_barrel_shifter_shrinks_shift_chains():
    source = """
program p;
input a; output y;
begin y := a >> 9; end.
"""
    program = compile_dfl(source)
    plain = RecordCompiler(Asip(AsipParams())).compile(program)
    barrel = RecordCompiler(
        Asip(AsipParams(has_barrel_shifter=True))).compile(program)
    assert barrel.words() < plain.words()
    for compiled in (plain, barrel):
        outputs, _ = run_compiled(compiled, {"a": -12345})
        assert outputs["y"] == -12345 >> 9


# ----------------------------------------------------------------------
# Processor cube
# ----------------------------------------------------------------------

def test_classification_of_shipped_targets():
    assert classify(TC25()).corner_name == "DSP core"
    assert classify(M56()).corner_name == "DSP core"
    assert classify(Risc16()).corner_name == "GPP core"
    assert classify(Asip()).corner_name == "ASSP"


def test_impossible_corner_rejected():
    with pytest.raises(ValueError):
        CubePosition(form="packaged", domain="dsp",
                     application="configurable")


def test_axis_validation():
    with pytest.raises(ValueError):
        CubePosition(form="liquid", domain="dsp", application="fixed")


def test_cube_table_renders_all():
    table = cube_table([TC25(), M56(), Risc16(), Asip()])
    assert "DSP core" in table and "GPP core" in table \
        and "ASSP" in table
