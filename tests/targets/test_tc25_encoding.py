"""Assembler/disassembler tests: every kernel, every TC25 compiler.

The strong property: assemble -> disassemble -> simulate produces the
same outputs as simulating the original code, and the image length
always equals the compiler's declared word count (which validates every
instruction's ``words`` metadata against a real encoding).
"""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.compiled import CompiledProgram
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels, hand_reference, kernel
from repro.sim.harness import run_compiled
from repro.targets.tc25 import TC25
from repro.targets.tc25_encoding import (
    EncodingError, MachineImage, OPCODES, assemble, disassemble,
)

KERNELS = [spec.name for spec in all_kernels()]


def roundtrip(compiled: CompiledProgram) -> CompiledProgram:
    image = assemble(compiled)
    assert len(image) == compiled.words()
    decoded_code = disassemble(image)
    return CompiledProgram(
        name=compiled.name, target=compiled.target, code=decoded_code,
        memory_map=compiled.memory_map, symbols=compiled.symbols,
        pmem_tables=compiled.pmem_tables, compiler=compiled.compiler)


@pytest.mark.parametrize("name", KERNELS)
@pytest.mark.parametrize("make", ["record", "baseline", "hand"])
def test_roundtrip_simulates_identically(name, make):
    spec = kernel(name)
    if make == "record":
        compiled = RecordCompiler(TC25()).compile(spec.program)
    elif make == "baseline":
        compiled = BaselineCompiler(TC25()).compile(spec.program)
    else:
        compiled = hand_reference(name)
    decoded = roundtrip(compiled)
    inputs = spec.inputs(seed=0)
    original, _ = run_compiled(compiled, inputs)
    replayed, _ = run_compiled(decoded, inputs)
    assert original == replayed


def test_opcode_table_is_stable_and_unique():
    assert len(OPCODES) == len(set(OPCODES))
    assert len(OPCODES) <= 56          # 6-bit space minus MPYK prefix
    assert OPCODES[0] == "NOP"         # format anchors


def test_hex_dump_shape():
    compiled = hand_reference("dot_product")
    image = assemble(compiled)
    dump = image.hex_dump(per_line=4)
    assert dump.startswith("0000:")
    assert all(len(line.split(": ")[1].split()) <= 4
               for line in dump.splitlines())


def test_unencodable_operand_is_an_error():
    from repro.codegen.asm import AsmInstr, CodeSeq, Mem
    compiled = hand_reference("real_update")
    bad = CompiledProgram(
        name="bad", target=compiled.target,
        code=CodeSeq([AsmInstr(opcode="LAC",
                               operands=(Mem("x"),))]),   # unresolved
        memory_map=compiled.memory_map, symbols={},
    )
    with pytest.raises(EncodingError):
        assemble(bad)


def test_word_size_mismatch_detected():
    from repro.codegen.asm import AsmInstr, CodeSeq
    compiled = hand_reference("real_update")
    bad = CompiledProgram(
        name="bad", target=compiled.target,
        code=CodeSeq([AsmInstr(opcode="ZAC", words=3)]),   # lies
        memory_map=compiled.memory_map, symbols={},
    )
    with pytest.raises(EncodingError):
        assemble(bad)
