"""Unit tests for the TC25 target model."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, LabelRef, Mem, Reg
from repro.sim.machine import SimulationError
from repro.targets.tc25 import TC25, _wrap16, _wrap32


def ins(name, *operands, modes=None):
    return AsmInstr(opcode=name, operands=tuple(operands),
                    modes=modes or {})


def direct(address):
    return Mem(symbol=f"@{address}", mode="direct", address=address)


@pytest.fixture()
def target():
    return TC25()


@pytest.fixture()
def state(target):
    return target.initial_state()


def test_wrap_helpers():
    assert _wrap16(0x8000) == -0x8000
    assert _wrap16(0x7FFF) == 0x7FFF
    assert _wrap32(1 << 31) == -(1 << 31)


def test_accumulator_basics(target, state):
    state.mem[3] = 100
    target.execute(state, ins("LAC", direct(3)))
    assert state.regs["acc"] == 100
    target.execute(state, ins("ADDK", Imm(28)))
    assert state.regs["acc"] == 128
    target.execute(state, ins("NEG"))
    assert state.regs["acc"] == -128
    target.execute(state, ins("ABS"))
    assert state.regs["acc"] == 128
    target.execute(state, ins("SACL", direct(4)))
    assert state.mem[4] == 128


def test_sacl_wraps_to_16_bits(target, state):
    state.regs["acc"] = 0x12345
    target.execute(state, ins("SACL", direct(0)))
    assert state.mem[0] == _wrap16(0x12345)


def test_multiplier_path_and_product_shift_mode(target, state):
    state.mem[0] = 20000
    state.mem[1] = 16384          # 0.5 in Q15
    target.execute(state, ins("LT", direct(0)))
    target.execute(state, ins("MPY", direct(1)))
    assert state.regs["p"] == 20000 * 16384
    target.execute(state, ins("SPM", Imm(15)))
    target.execute(state, ins("PAC"))
    assert state.regs["acc"] == (20000 * 16384) >> 15
    target.execute(state, ins("SPM", Imm(0)))
    target.execute(state, ins("APAC"))
    assert state.regs["acc"] == ((20000 * 16384) >> 15) + 20000 * 16384


def test_satl_extension(target, state):
    state.regs["acc"] = 1 << 20
    target.execute(state, ins("SATL"))
    assert state.regs["acc"] == 32767
    state.regs["acc"] = -(1 << 20)
    target.execute(state, ins("SATL"))
    assert state.regs["acc"] == -32768


def test_combo_instructions(target, state):
    state.mem[0] = 3
    state.regs["p"] = 50
    state.regs["acc"] = 10
    target.execute(state, ins("LTA", direct(0)))
    assert state.regs["acc"] == 60
    assert state.regs["t"] == 3
    target.execute(state, ins("LTS", direct(0)))
    assert state.regs["acc"] == 10
    target.execute(state, ins("LTP", direct(0)))
    assert state.regs["acc"] == 50


def test_dmov_copies_up(target, state):
    state.mem[5] = 7
    target.execute(state, ins("DMOV", direct(5)))
    assert state.mem[6] == 7


def test_indirect_post_modify(target, state):
    state.regs["AR2"] = 10
    state.mem[10] = 55
    operand = Mem(symbol="v", mode="indirect", areg="AR2",
                  post_modify=-2)
    target.execute(state, ins("LAC", operand))
    assert state.regs["acc"] == 55
    assert state.regs["AR2"] == 8


def test_banz_semantics(target, state):
    state.regs["AR7"] = 2
    taken = target.execute(state, ins("BANZ", LabelRef("L"), Reg("AR7")))
    assert taken == "L" and state.regs["AR7"] == 1
    taken = target.execute(state, ins("BANZ", LabelRef("L"), Reg("AR7")))
    assert taken == "L" and state.regs["AR7"] == 0
    taken = target.execute(state, ins("BANZ", LabelRef("L"), Reg("AR7")))
    assert taken is None


def test_repeat_counting(target, state):
    instr = ins("RPTK", Imm(4))
    assert target.repeat_count(state, instr) == 1
    target.execute(state, instr)
    follow = ins("NOP")
    assert target.repeat_count(state, follow) == 5
    # consumed: next instruction runs once
    assert target.repeat_count(state, follow) == 1


def test_mac_streams_pmem_table(target, state):
    state.pmem_tables["T"] = [2, 3, 4]
    state.regs["AR0"] = 20
    state.mem[20:23] = [10, 11, 12]
    operand = Mem(symbol="x", mode="indirect", areg="AR0",
                  post_modify=1)
    instr = ins("MAC", LabelRef("T"), operand)
    count = target.repeat_count(state, instr)   # resets table index
    assert count == 1
    for _ in range(3):
        target.execute(state, instr)
    target.execute(state, ins("APAC"))
    assert state.regs["acc"] == 2 * 10 + 3 * 11 + 4 * 12


def test_mac_table_overrun_detected(target, state):
    state.pmem_tables["T"] = [1]
    state.regs["AR0"] = 0
    operand = Mem(symbol="x", mode="indirect", areg="AR0",
                  post_modify=1)
    instr = ins("MAC", LabelRef("T"), operand)
    target.repeat_count(state, instr)
    target.execute(state, instr)
    with pytest.raises(SimulationError):
        target.execute(state, instr)


def test_macd_shifts_delay_line(target, state):
    state.pmem_tables["T"] = [1]
    state.regs["AR0"] = 30
    state.mem[30] = 9
    operand = Mem(symbol="x", mode="indirect", areg="AR0",
                  post_modify=-1)
    instr = ins("MACD", LabelRef("T"), operand)
    target.repeat_count(state, instr)
    target.execute(state, instr)
    assert state.mem[31] == 9        # shifted up
    assert state.regs["AR0"] == 29


def test_unknown_opcode(target, state):
    with pytest.raises(SimulationError):
        target.execute(state, ins("FROB"))


def test_unresolved_operand_rejected(target, state):
    with pytest.raises(SimulationError):
        target.execute(state, ins("LAC", Mem("x")))


def test_finalize_loop_prefers_rptk(target):
    body = [ins("DMOV", direct(0))]
    prologue, epilogue = target.finalize_loop(8, body, 0, 0)
    assert prologue[0].opcode == "RPTK"
    assert not epilogue


def test_finalize_loop_branch_fallback(target):
    body = [ins("LAC", direct(0)), ins("SACL", direct(1))]
    prologue, epilogue = target.finalize_loop(8, body, 3, 0)
    opcodes = [getattr(item, "opcode", None) for item in prologue]
    assert "LARK" in opcodes
    assert epilogue[0].opcode == "BANZ"


def test_peephole_fusions(target):
    code = CodeSeq([
        ins("APAC"), ins("LT", direct(0)),
        ins("PAC"), ins("LT", direct(1)),
        ins("SPAC"), ins("LT", direct(2)),
        ins("APAC"),
    ])
    fused = target.peephole(code)
    opcodes = [i.opcode for i in fused.instructions()]
    assert opcodes == ["LTA", "LTP", "LTS", "APAC"]
