"""Unit + property tests for the fixed-point arithmetic context."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.ops import op

WORD16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
ANY_INT = st.integers(min_value=-(1 << 40), max_value=(1 << 40))


@pytest.fixture(scope="module")
def fpc():
    return FixedPointContext(16)


def test_range_bounds(fpc):
    assert fpc.min_value == -32768
    assert fpc.max_value == 32767


def test_width_validation():
    with pytest.raises(ValueError):
        FixedPointContext(1)


def test_wrap_examples(fpc):
    assert fpc.wrap(32768) == -32768
    assert fpc.wrap(-32769) == 32767
    assert fpc.wrap(65536) == 0
    assert fpc.wrap(12345) == 12345


def test_saturate_examples(fpc):
    assert fpc.saturate(99999) == 32767
    assert fpc.saturate(-99999) == -32768
    assert fpc.saturate(5) == 5


def test_reduce_respects_mode(fpc):
    saturating = fpc.with_overflow(Overflow.SATURATE)
    assert fpc.reduce(40000) == fpc.wrap(40000)
    assert saturating.reduce(40000) == 32767


@given(ANY_INT)
def test_wrap_is_idempotent(value):
    fpc = FixedPointContext(16)
    assert fpc.wrap(fpc.wrap(value)) == fpc.wrap(value)


@given(ANY_INT)
def test_wrap_lands_in_range(value):
    fpc = FixedPointContext(16)
    assert fpc.in_range(fpc.wrap(value))


@given(ANY_INT, ANY_INT)
def test_wrap_is_ring_homomorphism_for_add(a, b):
    fpc = FixedPointContext(16)
    assert fpc.wrap(a + b) == fpc.wrap(fpc.wrap(a) + fpc.wrap(b))


@given(ANY_INT, ANY_INT)
def test_wrap_is_ring_homomorphism_for_mul(a, b):
    fpc = FixedPointContext(16)
    assert fpc.wrap(a * b) == fpc.wrap(fpc.wrap(a) * fpc.wrap(b))


@given(ANY_INT)
def test_saturate_bounded_and_monotone_fixpoint(value):
    fpc = FixedPointContext(16)
    clamped = fpc.saturate(value)
    assert fpc.in_range(clamped)
    assert fpc.saturate(clamped) == clamped


def test_apply_is_exact_for_ring_operators(fpc):
    # Expression semantics: no intermediate reduction.
    assert fpc.apply(op("mul"), 30000, 30000) == 900_000_000
    assert fpc.apply(op("add"), 32767, 32767) == 65534


def test_apply_sat_clamps(fpc):
    assert fpc.apply(op("sat"), 900_000_000) == 32767
    assert fpc.apply(op("sat"), -900_000_000) == -32768
    assert fpc.apply(op("sat"), 7) == 7


def test_apply_validates_shift_amounts(fpc):
    with pytest.raises(ValueError):
        fpc.apply(op("shr"), 4, 40)
    with pytest.raises(ValueError):
        fpc.apply(op("shl"), 4, -1)
    # double-width shifts are allowed (products live at 32 bits)
    assert fpc.apply(op("shr"), 1 << 20, 15) == 32


def test_fractional_helpers(fpc):
    q15 = fpc.to_fixed(0.5, 15)
    assert q15 == 16384
    assert fpc.to_float(q15, 15) == pytest.approx(0.5)
    # 0.5 * 0.5 = 0.25 in Q15
    product = fpc.fractional_multiply(q15, q15, 15)
    assert fpc.to_float(product, 15) == pytest.approx(0.25, abs=1e-4)
