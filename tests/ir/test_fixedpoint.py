"""Unit + property tests for the fixed-point arithmetic context."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.ops import op

WORD16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
ANY_INT = st.integers(min_value=-(1 << 40), max_value=(1 << 40))


@pytest.fixture(scope="module")
def fpc():
    return FixedPointContext(16)


def test_range_bounds(fpc):
    assert fpc.min_value == -32768
    assert fpc.max_value == 32767


def test_width_validation():
    with pytest.raises(ValueError):
        FixedPointContext(1)


def test_wrap_examples(fpc):
    assert fpc.wrap(32768) == -32768
    assert fpc.wrap(-32769) == 32767
    assert fpc.wrap(65536) == 0
    assert fpc.wrap(12345) == 12345


def test_saturate_examples(fpc):
    assert fpc.saturate(99999) == 32767
    assert fpc.saturate(-99999) == -32768
    assert fpc.saturate(5) == 5


def test_reduce_respects_mode(fpc):
    saturating = fpc.with_overflow(Overflow.SATURATE)
    assert fpc.reduce(40000) == fpc.wrap(40000)
    assert saturating.reduce(40000) == 32767


@given(ANY_INT)
def test_wrap_is_idempotent(value):
    fpc = FixedPointContext(16)
    assert fpc.wrap(fpc.wrap(value)) == fpc.wrap(value)


@given(ANY_INT)
def test_wrap_lands_in_range(value):
    fpc = FixedPointContext(16)
    assert fpc.in_range(fpc.wrap(value))


@given(ANY_INT, ANY_INT)
def test_wrap_is_ring_homomorphism_for_add(a, b):
    fpc = FixedPointContext(16)
    assert fpc.wrap(a + b) == fpc.wrap(fpc.wrap(a) + fpc.wrap(b))


@given(ANY_INT, ANY_INT)
def test_wrap_is_ring_homomorphism_for_mul(a, b):
    fpc = FixedPointContext(16)
    assert fpc.wrap(a * b) == fpc.wrap(fpc.wrap(a) * fpc.wrap(b))


@given(ANY_INT)
def test_saturate_bounded_and_monotone_fixpoint(value):
    fpc = FixedPointContext(16)
    clamped = fpc.saturate(value)
    assert fpc.in_range(clamped)
    assert fpc.saturate(clamped) == clamped


def test_apply_is_exact_for_ring_operators(fpc):
    # Expression semantics: no intermediate reduction.
    assert fpc.apply(op("mul"), 30000, 30000) == 900_000_000
    assert fpc.apply(op("add"), 32767, 32767) == 65534


def test_apply_sat_clamps(fpc):
    assert fpc.apply(op("sat"), 900_000_000) == 32767
    assert fpc.apply(op("sat"), -900_000_000) == -32768
    assert fpc.apply(op("sat"), 7) == 7


def test_apply_validates_shift_amounts(fpc):
    with pytest.raises(ValueError):
        fpc.apply(op("shr"), 4, 40)
    with pytest.raises(ValueError):
        fpc.apply(op("shl"), 4, -1)
    # double-width shifts are allowed (products live at 32 bits)
    assert fpc.apply(op("shr"), 1 << 20, 15) == 32


def test_saturation_boundaries_are_exact(fpc):
    # one past each boundary clamps; the boundary itself is unchanged
    assert fpc.saturate(fpc.max_value + 1) == fpc.max_value
    assert fpc.saturate(fpc.min_value - 1) == fpc.min_value
    assert fpc.saturate(fpc.max_value) == fpc.max_value
    assert fpc.saturate(fpc.min_value) == fpc.min_value
    # wrap flips sign exactly at the boundary instead
    assert fpc.wrap(fpc.max_value + 1) == fpc.min_value
    assert fpc.wrap(fpc.min_value - 1) == fpc.max_value


def test_to_fixed_rounds_to_nearest(fpc):
    # 0.300018.. in Q15 is 9830.9..; round-to-nearest, not truncation
    assert fpc.to_fixed(0.3, 15) == 9830
    assert fpc.to_fixed(0.30002, 15) == 9831
    assert fpc.to_fixed(1.5, 15) == fpc.max_value      # clamps, no wrap


def test_fractional_multiply_truncates_toward_minus_infinity(fpc):
    # the product shifter is an arithmetic right shift: -3 >> 1 == -2
    assert fpc.fractional_multiply(-3, 1, 1) == -2
    assert fpc.fractional_multiply(3, 1, 1) == 1


def test_wrap_vs_saturate_parity_with_oracle():
    """Randomized operand pairs: evaluating ``o := a OP b`` through the
    conformance oracle in each overflow mode must equal reducing the
    exact result with wrap/saturate directly (seeded stdlib random)."""
    import random

    from repro.ir.dfg import DataFlowGraph
    from repro.ir.program import Block, Program, Symbol
    from repro.verify.oracle import Oracle

    wrap_fpc = FixedPointContext(16, Overflow.WRAP)
    sat_fpc = FixedPointContext(16, Overflow.SATURATE)
    rng = random.Random(2024)
    for _ in range(200):
        operator = rng.choice(["add", "sub", "mul"])
        a = rng.randint(-(1 << 15), (1 << 15) - 1)
        b = rng.randint(-(1 << 15), (1 << 15) - 1)
        program = Program(name="pair")
        program.declare(Symbol(name="a", role="input"))
        program.declare(Symbol(name="b", role="input"))
        program.declare(Symbol(name="o", role="output"))
        dfg = DataFlowGraph()
        dfg.write("o", dfg.compute(operator, dfg.ref("a"), dfg.ref("b")))
        program.body = [Block(dfg=dfg)]

        exact = {"add": a + b, "sub": a - b, "mul": a * b}[operator]
        inputs = {"a": a, "b": b}
        assert Oracle(wrap_fpc).run(program, inputs)["o"] == \
            wrap_fpc.wrap(exact), (operator, a, b)
        assert Oracle(sat_fpc).run(program, inputs)["o"] == \
            sat_fpc.saturate(exact), (operator, a, b)


def test_fractional_helpers(fpc):
    q15 = fpc.to_fixed(0.5, 15)
    assert q15 == 16384
    assert fpc.to_float(q15, 15) == pytest.approx(0.5)
    # 0.5 * 0.5 = 0.25 in Q15
    product = fpc.fractional_multiply(q15, q15, 15)
    assert fpc.to_float(product, 15) == pytest.approx(0.25, abs=1e-4)
