"""Unit + property tests for algebraic variant enumeration.

The load-bearing property: every enumerated variant is *bit-true
equivalent* to the original under the exact expression semantics, for
all inputs.  Hypothesis generates both the trees and the environments.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.algebraic import (
    DEFAULT_RULES, DEFAULT_VARIANT_LIMIT, enumerate_variants,
)
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.trees import Tree

FPC = FixedPointContext(16)
VARIABLES = ["a", "b", "c"]


def leaf_strategy():
    return st.one_of(
        st.sampled_from(VARIABLES).map(Tree.ref),
        st.integers(min_value=-64, max_value=64).map(Tree.const),
    )


def tree_strategy(max_depth=3):
    def extend(children):
        binary = st.sampled_from(["add", "sub", "mul", "and", "or",
                                  "xor"])
        unary = st.sampled_from(["neg", "abs", "not"])
        return st.one_of(
            st.tuples(binary, children, children).map(
                lambda t: Tree.compute(t[0], t[1], t[2])),
            st.tuples(unary, children).map(
                lambda t: Tree.compute(t[0], t[1])),
        )
    return st.recursive(leaf_strategy(), extend, max_leaves=6)


def environments():
    return st.fixed_dictionaries({
        name: st.integers(min_value=-100, max_value=100)
        for name in VARIABLES
    })


@given(tree_strategy(), environments())
@settings(max_examples=150, deadline=None)
def test_variants_preserve_exact_semantics(tree, env):
    reference = tree.evaluate(dict(env), FPC)
    for variant in enumerate_variants(tree, limit=16):
        assert variant.evaluate(dict(env), FPC) == reference


@given(tree_strategy())
@settings(max_examples=100, deadline=None)
def test_variants_are_distinct_and_bounded(tree):
    variants = enumerate_variants(tree, limit=12)
    assert variants[0] == tree
    assert len(variants) <= 12
    assert len(set(variants)) == len(variants)


def test_variants_agree_with_conformance_oracle():
    """Every enumerated variant must evaluate identically under the
    *independent* oracle evaluator as well -- not just under
    ``Tree.evaluate``, which the rewriter was developed against.
    Seeded stdlib random keeps this deterministic and dependency-free.
    """
    import random

    from repro.verify.oracle import Oracle

    oracle = Oracle(FPC)
    rng = random.Random(99)
    operators = ["add", "sub", "mul", "and", "or", "xor", "neg", "abs"]

    def random_tree(depth):
        if depth <= 0 or rng.random() < 0.35:
            if rng.random() < 0.4:
                return Tree.const(rng.randint(-64, 64))
            return Tree.ref(rng.choice(VARIABLES))
        name = rng.choice(operators)
        if name in ("neg", "abs"):
            return Tree.compute(name, random_tree(depth - 1))
        return Tree.compute(name, random_tree(depth - 1),
                            random_tree(depth - 1))

    for _ in range(80):
        tree = random_tree(3)
        env = {name: rng.randint(-100, 100) for name in VARIABLES}
        reference = oracle.evaluate_tree(tree, env)
        for variant in enumerate_variants(tree, limit=16):
            assert oracle.evaluate_tree(variant, env) == reference, \
                (tree, variant, env)


def test_commute_generates_swapped_operands():
    tree = Tree.compute("add", Tree.ref("a"), Tree.ref("b"))
    variants = enumerate_variants(tree)
    assert Tree.compute("add", Tree.ref("b"), Tree.ref("a")) in variants


def test_mul_pow2_becomes_shift():
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(8))
    variants = enumerate_variants(tree)
    assert Tree.compute("shl", Tree.ref("a"), Tree.const(3)) in variants


def test_mul_by_one_is_not_shifted():
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(1))
    shifted = [v for v in enumerate_variants(tree)
               if v.kind.value == "compute" and v.operator.name == "shl"]
    assert not shifted


def test_identity_elimination():
    tree = Tree.compute("add", Tree.ref("a"), Tree.const(0))
    assert Tree.ref("a") in enumerate_variants(tree)
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(1))
    assert Tree.ref("a") in enumerate_variants(tree)


def test_sub_add_neg_round_trip():
    tree = Tree.compute("sub", Tree.ref("a"), Tree.ref("b"))
    variants = enumerate_variants(tree)
    rewritten = Tree.compute("add", Tree.ref("a"),
                             Tree.compute("neg", Tree.ref("b")))
    assert rewritten in variants


def test_reassociation_exposes_mac_chains():
    # a + (b*c + d*e) can become (a + b*c) + d*e -- the left-deep shape
    # accumulator machines like.
    bc = Tree.compute("mul", Tree.ref("b"), Tree.ref("c"))
    de = Tree.compute("mul", Tree.ref("a"), Tree.ref("b"))
    tree = Tree.compute("add", Tree.ref("a"),
                        Tree.compute("add", bc, de))
    left_deep = Tree.compute("add",
                             Tree.compute("add", Tree.ref("a"), bc), de)
    assert left_deep in enumerate_variants(tree, limit=64)


def test_limit_validation():
    with pytest.raises(ValueError):
        enumerate_variants(Tree.ref("a"), limit=0)


def test_default_limit_is_reasonable():
    assert 16 <= DEFAULT_VARIANT_LIMIT <= 1024


def test_rules_have_unique_names():
    names = [rule.name for rule in DEFAULT_RULES]
    assert len(names) == len(set(names))


# ----------------------------------------------------------------------
# Variant-memo LRU bound (long fuzz runs must not grow memory forever)
# ----------------------------------------------------------------------

def test_variant_cache_is_lru_bounded():
    from repro.ir import algebraic
    from repro.ir.trees import tree_caching_enabled

    if not tree_caching_enabled():
        pytest.skip("tree caching disabled; the memo is inert")
    algebraic.clear_variant_cache()
    previous = algebraic.set_variant_cache_limit(8)
    try:
        trees = [Tree.compute("add", Tree.ref("a"), Tree.const(value))
                 for value in range(20)]
        for tree in trees:
            enumerate_variants(tree)
        info = algebraic.variant_cache_info()
        assert info["size"] <= 8
        assert info["limit"] == 8
        assert info["evictions"] >= 12
        # LRU, not FIFO: a hit protects its entry from eviction.  After
        # 20 inserts the memo holds trees[12..19]; hitting the *oldest*
        # resident moves it to the young end, so the 7 inserts below
        # evict trees[13..19] and leave it cached.
        survivor = trees[12]
        assert enumerate_variants(survivor)            # refresh
        for tree in (Tree.compute("mul", Tree.ref("b"), Tree.const(v))
                     for v in range(7)):
            enumerate_variants(tree)                   # 7 inserts of 8
        before = algebraic.variant_cache_info()["evictions"]
        enumerate_variants(survivor)
        assert algebraic.variant_cache_info()["evictions"] == before, \
            "hitting the survivor must not have cost an enumeration"
    finally:
        algebraic.set_variant_cache_limit(previous)
        algebraic.clear_variant_cache()


def test_variant_cache_limit_validation_and_shrink():
    from repro.ir import algebraic

    with pytest.raises(ValueError):
        algebraic.set_variant_cache_limit(0)
    previous = algebraic.set_variant_cache_limit(
        algebraic.variant_cache_info()["limit"])
    assert previous >= 1
