"""Unit tests for the operator vocabulary."""

import pytest

from repro.ir.ops import OPS, Op, OpKind, op


def test_lookup_known_operator():
    assert op("add").name == "add"
    assert op("add").arity == 2


def test_lookup_unknown_operator_lists_known():
    with pytest.raises(KeyError) as excinfo:
        op("frobnicate")
    assert "add" in str(excinfo.value)


def test_commutativity_flags():
    assert op("add").commutative
    assert op("mul").commutative
    assert not op("sub").commutative
    assert not op("shl").commutative


def test_associativity_flags():
    assert op("add").associative
    assert op("and").associative
    assert not op("sub").associative


def test_identities():
    assert op("add").identity == 0
    assert op("mul").identity == 1
    assert op("xor").identity == 0
    assert op("and").identity is None


def test_reference_semantics():
    assert op("add").py(3, 4) == 7
    assert op("sub").py(3, 4) == -1
    assert op("mul").py(-3, 4) == -12
    assert op("mac").py(10, 3, 4) == 22
    assert op("msu").py(10, 3, 4) == -2
    assert op("neg").py(5) == -5
    assert op("abs").py(-5) == 5
    assert op("min").py(2, -7) == -7
    assert op("max").py(2, -7) == 2


def test_shift_semantics_reject_negative_amounts():
    with pytest.raises(ValueError):
        op("shl").py(1, -1)
    with pytest.raises(ValueError):
        op("shr").py(1, -2)


def test_store_is_a_pseudo_op_without_semantics():
    assert op("store").py is None
    assert op("store").arity == 2


def test_every_real_operator_has_semantics():
    for name, operator in OPS.items():
        if name == "store":
            continue
        assert operator.py is not None, name


def test_opkind_enum_values():
    assert OpKind.CONST.value == "const"
    assert OpKind.REF.value == "ref"
    assert OpKind.COMPUTE.value == "compute"
