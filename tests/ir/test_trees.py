"""Unit tests for expression trees and DAG-to-tree decomposition."""

import pytest

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.trees import TEMP_PREFIX, Tree, decompose, tree_of_node


@pytest.fixture()
def fpc():
    return FixedPointContext(16)


def test_tree_constructors_and_str():
    t = Tree.compute("add", Tree.ref("x"),
                     Tree.compute("mul", Tree.ref("a"), Tree.const(4)))
    assert str(t) == "add(x, mul(a, #4))"
    assert t.size() == 5
    assert t.depth() == 3


def test_compute_validates_arity():
    with pytest.raises(ValueError):
        Tree.compute("add", Tree.ref("x"))


def test_trees_are_hashable_and_structural():
    a = Tree.compute("add", Tree.ref("x"), Tree.const(1))
    b = Tree.compute("add", Tree.ref("x"), Tree.const(1))
    assert a == b
    assert hash(a) == hash(b)
    assert a != Tree.compute("add", Tree.ref("x"), Tree.const(2))


def test_postorder_visits_children_first():
    t = Tree.compute("add", Tree.ref("x"), Tree.const(1))
    nodes = list(t.postorder())
    assert nodes[-1] is t
    assert len(nodes) == 3


def test_evaluate_exact_semantics(fpc):
    t = Tree.compute("shr",
                     Tree.compute("mul", Tree.ref("a"), Tree.ref("b")),
                     Tree.const(15))
    env = {"a": 20000, "b": 20000}
    # exact product then shift: (4e8) >> 15
    assert t.evaluate(env, fpc) == (20000 * 20000) >> 15


def test_tree_of_node_expands_shared_nodes():
    g = DataFlowGraph()
    a = g.ref("a")
    shared = g.compute("add", a, a)
    top = g.compute("mul", shared, shared)
    t = tree_of_node(g, top)
    assert str(t) == "mul(add(a, a), add(a, a))"


def test_decompose_straightline_no_sharing():
    g = DataFlowGraph()
    g.write("y", g.compute("add", g.ref("a"), g.ref("b")))
    assignments = decompose(g)
    assert len(assignments) == 1
    assert assignments[0].symbol == "y"
    assert not assignments[0].is_temp


def test_decompose_cuts_shared_compute_nodes():
    g = DataFlowGraph()
    # xor is word-sized by construction, so sharing through a 16-bit
    # temporary is safe
    shared = g.compute("xor", g.ref("a"), g.const(5))
    g.write("y", g.compute("add", shared, g.ref("b")))
    g.write("z", g.compute("add", shared, shared))
    assignments = decompose(g)
    temps = [a for a in assignments if a.is_temp]
    assert len(temps) == 1
    assert temps[0].symbol == f"{TEMP_PREFIX}0"
    assert str(temps[0].tree) == "xor(a, #5)"
    # uses refer to the temp
    y = next(a for a in assignments if a.symbol == "y")
    assert f"{TEMP_PREFIX}0" in str(y.tree)


def test_decompose_duplicates_wide_shared_nodes():
    # a*5 can exceed 16 bits; its consumers (adds) are exact, so a
    # 16-bit temporary would silently wrap -- the node is duplicated.
    g = DataFlowGraph()
    product = g.compute("mul", g.ref("a"), g.const(5))
    g.write("y", g.compute("add", product, g.ref("b")))
    g.write("z", g.compute("add", product, g.ref("c")))
    assignments = decompose(g)
    assert not [a for a in assignments if a.is_temp]
    y = next(a for a in assignments if a.symbol == "y")
    z = next(a for a in assignments if a.symbol == "z")
    assert "mul(a, #5)" in str(y.tree)
    assert "mul(a, #5)" in str(z.tree)


def test_decompose_cuts_wide_node_with_wrapping_consumers():
    # the same wide product is safe to share when every consumer wraps
    # it anyway (here: xor operands pass through the word-wide port)
    g = DataFlowGraph()
    product = g.compute("mul", g.ref("a"), g.const(5))
    g.write("y", g.compute("xor", product, g.ref("b")))
    g.write("z", g.compute("xor", product, g.ref("c")))
    assignments = decompose(g)
    temps = [a for a in assignments if a.is_temp]
    assert len(temps) == 1


def test_decompose_leaves_are_duplicated_not_cut():
    g = DataFlowGraph()
    a = g.ref("a")
    g.write("y", g.compute("add", a, a))
    assignments = decompose(g)
    assert len(assignments) == 1     # leaf sharing needs no temp


def test_decompose_temps_defined_before_use():
    g = DataFlowGraph()
    inner = g.compute("add", g.ref("a"), g.ref("b"))
    outer = g.compute("mul", inner, inner)
    g.write("y", outer)
    g.write("z", outer)
    assignments = decompose(g)
    defined = set()
    for assignment in assignments:
        for leaf in assignment.tree.postorder():
            if leaf.symbol and leaf.symbol.startswith(TEMP_PREFIX):
                assert leaf.symbol in defined
        if assignment.is_temp:
            defined.add(assignment.symbol)


def test_decompose_preserves_semantics(fpc):
    g = DataFlowGraph()
    shared = g.compute("mul", g.ref("a"), g.ref("b"))
    g.write("y", g.compute("add", shared, g.ref("c")))
    g.write("z", g.compute("sub", shared, g.ref("c")))
    env_direct = {"a": 7, "b": -3, "c": 100}
    g.evaluate(dict(env_direct), fpc)
    direct = dict(env_direct)
    g.evaluate(direct, fpc)

    sequential = dict(env_direct)
    for assignment in decompose(g):
        value = assignment.tree.evaluate(sequential, fpc)
        sequential[assignment.symbol] = fpc.reduce(value)
    assert sequential["y"] == direct["y"]
    assert sequential["z"] == direct["z"]


def test_decompose_temp_counter_start():
    g = DataFlowGraph()
    shared = g.compute("add", g.ref("a"), g.ref("b"))
    g.write("y", g.compute("mul", shared, shared))
    g.write("z", shared)
    assignments = decompose(g, temp_counter_start=7)
    temp = next(a for a in assignments if a.is_temp)
    assert temp.symbol == f"{TEMP_PREFIX}7"


def test_output_of_shared_node_reads_temp():
    g = DataFlowGraph()
    shared = g.compute("and", g.ref("a"), g.ref("b"))   # word-sized
    g.write("y", shared)
    g.write("z", g.compute("neg", shared))
    assignments = decompose(g)
    y = next(a for a in assignments if a.symbol == "y")
    assert str(y.tree) == f"{TEMP_PREFIX}0"
