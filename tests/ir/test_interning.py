"""Property-based tests for hash-consed trees.

The interning layer (``repro.ir.trees``) promises that it is purely an
optimization: a tree built with caching on is *indistinguishable* --
under ``==``, ``hash`` and every accessor -- from the same tree built
with caching off.  Hypothesis generates random trees and checks the
contract from both sides.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.ir.trees import (
    Tree, clear_tree_caches, intern_table_size, set_tree_caching,
    tree_caching_enabled,
)

_OPERATORS = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr")


def _tree_strategy() -> st.SearchStrategy:
    """Random well-formed trees over a small symbol/value vocabulary
    (small on purpose: collisions between draws are what exercise the
    intern table)."""
    leaf = st.one_of(
        st.integers(min_value=-8, max_value=8).map(Tree.const),
        st.sampled_from(["a", "b", "x"]).map(Tree.ref),
    )
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(_OPERATORS), children, children,
        ).map(lambda t: Tree.compute(t[0], t[1], t[2])),
        max_leaves=12,
    )


def _rebuild_uncached(tree: Tree) -> Tree:
    """Deep-copy a tree through the constructor with interning off."""
    previous = set_tree_caching(False)
    try:
        return _rebuild(tree)
    finally:
        set_tree_caching(previous)


def _rebuild(tree: Tree) -> Tree:
    children = tuple(_rebuild(child) for child in tree.children)
    return Tree(tree.kind, operator=tree.operator, children=children,
                value=tree.value, symbol=tree.symbol, index=tree.index)


@settings(max_examples=200, deadline=None)
@given(_tree_strategy())
def test_interned_equals_structural(tree):
    """Interned rebuilds are pointer-identical; uncached rebuilds are
    structurally equal with the same hash."""
    assert tree_caching_enabled()
    interned = _rebuild(tree)
    assert interned is tree          # hash-consing: same object back
    uncached = _rebuild_uncached(tree)
    assert uncached is not tree      # caching off: a genuine copy
    assert uncached == tree and tree == uncached
    assert hash(uncached) == hash(tree)


@settings(max_examples=100, deadline=None)
@given(_tree_strategy(), _tree_strategy())
def test_equality_symmetric_and_hash_consistent(left, right):
    """For arbitrary pairs: == is symmetric and equal trees hash equal
    (the dict/set contract the BURS label cache depends on)."""
    assert (left == right) == (right == left)
    if left == right:
        assert hash(left) == hash(right)
        assert left is right         # interning makes equality identity


@settings(max_examples=100, deadline=None)
@given(_tree_strategy())
def test_pickle_reinterns(tree):
    """Unpickled trees re-enter the intern table (the compile farm
    ships results across processes)."""
    payload = pickle.dumps(tree)
    assert b"_hash" not in payload   # per-process hash salt never ships
    clone = pickle.loads(payload)
    assert clone == tree
    assert clone is tree             # __getnewargs__ routes via __new__
    assert hash(clone) == hash(tree)


def test_cache_toggle_round_trip():
    """set_tree_caching returns the previous state and clears on
    disable; intern_table_size reflects fresh construction."""
    assert tree_caching_enabled()
    clear_tree_caches()
    base = intern_table_size()
    Tree.compute("add", Tree.ref("q0"), Tree.const(77))
    grown = intern_table_size()
    assert grown > base
    previous = set_tree_caching(False)
    try:
        assert previous is True
        assert not tree_caching_enabled()
        assert intern_table_size() == 0      # disabling clears the table
        a = Tree.const(5)
        b = Tree.const(5)
        assert a is not b and a == b
    finally:
        set_tree_caching(True)
    assert tree_caching_enabled()
