"""Unit + property tests for interval range analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ranges import Interval, fits_word, tree_range, word_interval
from repro.ir.trees import Tree

FPC = FixedPointContext(16)


def test_interval_validation_and_predicates():
    with pytest.raises(ValueError):
        Interval(3, 2)
    assert Interval(0, 5).within(Interval(-1, 6))
    assert not Interval(0, 7).within(Interval(0, 6))


def test_leaves():
    assert tree_range(Tree.ref("a"), FPC) == word_interval(FPC)
    assert tree_range(Tree.const(42), FPC) == Interval(42, 42)
    # constants wrap at the leaf
    wrapped = FPC.wrap(70000)
    assert tree_range(Tree.const(70000), FPC) == Interval(wrapped,
                                                          wrapped)


def test_add_widens():
    tree = Tree.compute("add", Tree.ref("a"), Tree.ref("b"))
    interval = tree_range(tree, FPC)
    assert interval.lo == 2 * FPC.min_value
    assert interval.hi == 2 * FPC.max_value
    assert not fits_word(tree, FPC)


def test_mul_by_small_constant():
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(2))
    assert not fits_word(tree, FPC)
    one = Tree.compute("mul", Tree.ref("a"), Tree.const(1))
    assert fits_word(one, FPC)


def test_bitwise_is_word_sized():
    for name in ("and", "or", "xor"):
        tree = Tree.compute(
            name,
            Tree.compute("mul", Tree.ref("a"), Tree.ref("b")),
            Tree.ref("c"))
        assert fits_word(tree, FPC), name
    assert fits_word(Tree.compute("not", Tree.compute(
        "add", Tree.ref("a"), Tree.ref("b"))), FPC)


def test_sat_and_wrap_clamp():
    wide = Tree.compute("mul", Tree.ref("a"), Tree.ref("b"))
    assert fits_word(Tree.compute("sat", wide), FPC)
    assert fits_word(Tree.compute("wrap", wide), FPC)


def test_shift_scaling():
    product = Tree.compute("mul", Tree.ref("a"), Tree.ref("b"))
    q15 = Tree.compute("shr", product, Tree.const(15))
    interval = tree_range(q15, FPC)
    # 2^30 >> 15 = 2^15: one past the word -- still (just) wide
    assert interval.hi == (FPC.min_value * FPC.min_value) >> 15
    q16 = Tree.compute("shr", product, Tree.const(16))
    assert fits_word(q16, FPC)


def test_neg_abs():
    tree = Tree.compute("neg", Tree.ref("a"))
    interval = tree_range(tree, FPC)
    assert interval.hi == -FPC.min_value    # -(-32768) = 32768: wide!
    assert not fits_word(tree, FPC)
    assert tree_range(Tree.compute("abs", Tree.const(-5)),
                      FPC) == Interval(5, 5)


def leaf_values():
    return st.integers(min_value=FPC.min_value, max_value=FPC.max_value)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_range_is_sound(data):
    """Any concrete evaluation lies within the computed interval."""
    variables = ["a", "b"]

    def trees():
        leaves = st.one_of(
            st.sampled_from(variables).map(Tree.ref),
            st.integers(min_value=-100, max_value=100).map(Tree.const))

        def extend(children):
            binary = st.sampled_from(["add", "sub", "mul", "and", "or",
                                      "xor", "min", "max"])
            return st.one_of(
                st.tuples(binary, children, children).map(
                    lambda t: Tree.compute(t[0], t[1], t[2])),
                st.tuples(st.sampled_from(["neg", "abs", "sat", "not"]),
                          children).map(
                    lambda t: Tree.compute(t[0], t[1])),
                st.tuples(st.sampled_from(["shl", "shr"]), children,
                          st.integers(min_value=0, max_value=8)).map(
                    lambda t: Tree.compute(t[0], t[1],
                                           Tree.const(t[2]))),
            )
        return st.recursive(leaves, extend, max_leaves=5)

    tree = data.draw(trees())
    env = {name: data.draw(leaf_values()) for name in variables}
    interval = tree_range(tree, FPC)
    value = tree.evaluate(env, FPC)
    assert interval.lo <= value <= interval.hi, (str(tree), env)
