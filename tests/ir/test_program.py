"""Unit tests for the structured program IR and its interpreter."""

import pytest

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.program import Block, Loop, Program, Symbol


@pytest.fixture()
def fpc():
    return FixedPointContext(16)


def _accumulate_program(count: int) -> Program:
    """acc := 0; for i: acc := acc + v[i]"""
    program = Program(name="sum")
    program.declare(Symbol("v", size=count, role="input"))
    program.declare(Symbol("acc", role="output"))
    init = DataFlowGraph()
    init.write("acc", init.const(0))
    body = DataFlowGraph()
    body.write("acc", body.compute("add", body.ref("acc"),
                                   body.ref("v", ArrayIndex(1, 0))))
    program.body = [Block(dfg=init),
                    Loop(var="i", count=count, body=[Block(dfg=body)])]
    return program


def test_declare_rejects_duplicates():
    program = Program(name="p")
    program.declare(Symbol("x"))
    with pytest.raises(ValueError):
        program.declare(Symbol("x"))


def test_symbol_lookup_error():
    program = Program(name="p")
    with pytest.raises(KeyError):
        program.symbol("nope")


def test_loop_count_validation():
    with pytest.raises(ValueError):
        Loop(var="i", count=0)


def test_initial_environment_zeroes_storage():
    program = Program(name="p")
    program.declare(Symbol("x", role="input"))
    program.declare(Symbol("v", size=3, role="local"))
    env = program.initial_environment()
    assert env == {"x": 0, "v": [0, 0, 0]}


def test_initial_environment_applies_initializers():
    program = Program(name="p")
    program.declare(Symbol("x", init=7))
    program.declare(Symbol("v", size=2, init=[1, 2]))
    env = program.initial_environment()
    assert env == {"x": 7, "v": [1, 2]}


def test_initializer_length_validated():
    program = Program(name="p")
    program.declare(Symbol("v", size=3, init=[1]))
    with pytest.raises(ValueError):
        program.initial_environment()


def test_loop_execution_sums_array(fpc):
    program = _accumulate_program(4)
    env = program.initial_environment()
    env["v"] = [10, 20, 30, 40]
    program.run(env, fpc)
    assert env["acc"] == 100


def test_nested_loop_inner_var_wins(fpc):
    # outer loop x3 around inner loop x2 writing w[j] += 1:
    # inner blocks see the inner induction variable.
    program = Program(name="nested")
    program.declare(Symbol("w", size=2, role="output"))
    body = DataFlowGraph()
    cell = body.ref("w", ArrayIndex(1, 0))
    body.write("w", body.compute("add", cell, body.const(1)),
               ArrayIndex(1, 0))
    program.body = [Loop(var="o", count=3, body=[
        Loop(var="j", count=2, body=[Block(dfg=body)]),
    ])]
    env = program.initial_environment()
    program.run(env, fpc)
    assert env["w"] == [3, 3]


def test_inputs_outputs_queries():
    program = _accumulate_program(2)
    assert [s.name for s in program.inputs()] == ["v"]
    assert [s.name for s in program.outputs()] == ["acc"]


def test_dump_shows_structure():
    program = _accumulate_program(4)
    text = program.dump()
    assert "program sum" in text
    assert "loop i x4:" in text
    assert "input v[4]" in text
