"""Unit tests for data-flow graphs."""

import pytest

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext


@pytest.fixture()
def fpc():
    return FixedPointContext(16)


def test_interning_shares_identical_nodes():
    g = DataFlowGraph()
    a1 = g.ref("a")
    a2 = g.ref("a")
    c1 = g.const(5)
    c2 = g.const(5)
    assert a1 == a2
    assert c1 == c2
    assert g.compute("add", a1, c1) == g.compute("add", a2, c2)


def test_distinct_nodes_not_shared():
    g = DataFlowGraph()
    assert g.ref("a") != g.ref("b")
    assert g.const(1) != g.const(2)
    assert g.ref("a", ArrayIndex(1, 0)) != g.ref("a", ArrayIndex(1, 1))


def test_compute_validates_arity_and_operands():
    g = DataFlowGraph()
    a = g.ref("a")
    with pytest.raises(ValueError):
        g.compute("add", a)
    with pytest.raises(ValueError):
        g.compute("add", a, 999)


def test_write_validates_node():
    g = DataFlowGraph()
    with pytest.raises(ValueError):
        g.write("y", 0)


def test_use_counts_and_reachability():
    g = DataFlowGraph()
    a = g.ref("a")
    b = g.ref("b")
    product = g.compute("mul", a, b)
    dead = g.compute("add", a, a)
    g.write("y", product)
    counts = g.use_counts()
    assert counts[a] == 3           # mul + dead add twice
    assert counts[product] == 1     # the output
    reachable = g.reachable_from_outputs()
    assert product in reachable
    assert dead not in reachable


def test_topological_order_children_first():
    g = DataFlowGraph()
    a = g.ref("a")
    b = g.ref("b")
    s = g.compute("add", a, b)
    t = g.compute("mul", s, a)
    g.write("y", t)
    order = g.reachable_from_outputs()
    assert order.index(a) < order.index(s) < order.index(t)


def test_evaluate_reads_before_writes(fpc):
    # swap: x := y ; y := x  must use pre-state for both reads
    g = DataFlowGraph()
    x = g.ref("x")
    y = g.ref("y")
    g.write("x", y)
    g.write("y", x)
    env = {"x": 1, "y": 2}
    g.evaluate(env, fpc)
    assert env == {"x": 2, "y": 1}


def test_evaluate_wraps_on_store(fpc):
    g = DataFlowGraph()
    a = g.ref("a")
    g.write("y", g.compute("mul", a, a))
    env = {"a": 30000}
    g.evaluate(env, fpc)
    assert env["y"] == fpc.wrap(30000 * 30000)


def test_evaluate_array_indexing(fpc):
    g = DataFlowGraph()
    element = g.ref("v", ArrayIndex(coeff=1, offset=1))
    g.write("w", element, ArrayIndex(coeff=-1, offset=3))
    env = {"v": [10, 20, 30, 40], "w": [0, 0, 0, 0]}
    g.evaluate(env, fpc, induction_value=2)   # read v[3], write w[1]
    assert env["w"] == [0, 40, 0, 0]


def test_evaluate_missing_symbol_raises(fpc):
    g = DataFlowGraph()
    g.write("y", g.ref("missing"))
    with pytest.raises(KeyError):
        g.evaluate({}, fpc)


def test_evaluate_scalar_array_confusion_raises(fpc):
    g = DataFlowGraph()
    g.write("y", g.ref("a"))
    with pytest.raises(TypeError):
        g.evaluate({"a": [1, 2]}, fpc)
    g2 = DataFlowGraph()
    g2.write("y", g2.ref("a", ArrayIndex(0, 0)))
    with pytest.raises(TypeError):
        g2.evaluate({"a": 7}, fpc)


def test_last_write_wins(fpc):
    g = DataFlowGraph()
    g.write("y", g.const(1))
    g.write("y", g.const(2))
    env = {}
    g.evaluate(env, fpc)
    assert env["y"] == 2


def test_array_index_str():
    assert str(ArrayIndex(0, 3)) == "3"
    assert str(ArrayIndex(1, 0)) == "i"
    assert str(ArrayIndex(-1, 7)) == "-i+7"
    assert str(ArrayIndex(2, -1)) == "2*i-1"


def test_dump_mentions_nodes_and_outputs():
    g = DataFlowGraph()
    g.write("y", g.compute("add", g.ref("a"), g.const(1)))
    text = g.dump()
    assert "ref a" in text
    assert "#1" in text
    assert "y :=" in text
