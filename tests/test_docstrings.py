"""Documentation coverage: every public item carries a docstring.

The deliverable standard for this repository: modules, public classes
and public functions/methods are documented.  This test walks the whole
``repro`` package and fails on any undocumented public item, so the
guarantee cannot rot.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) \
            == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [module.__name__ for module in _walk_modules()
               if not (module.__doc__ or "").strip()]
    assert not missing, f"undocumented modules: {missing}"


def _method_documented(cls, method_name) -> bool:
    """A method counts as documented if it or any base-class override
    of the same name carries a docstring (the base documents the
    contract; overrides inherit it)."""
    for base in cls.__mro__:
        candidate = vars(base).get(method_name)
        if candidate is not None and \
                (getattr(candidate, "__doc__", "") or "").strip():
            return True
    return False


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not _method_documented(member, method_name):
                        missing.append(
                            f"{module.__name__}.{name}.{method_name}")
    assert not missing, \
        "undocumented public items:\n  " + "\n  ".join(sorted(missing))
