"""Unit tests for MiniDFL semantic analysis (incl. failure injection)."""

import pytest

from repro.dfl.errors import DflSemanticError
from repro.dfl.parser import parse
from repro.dfl.semantics import analyze


def check(source):
    return analyze(parse(source))


def expect_error(source, fragment):
    with pytest.raises(DflSemanticError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


def test_consts_fold_with_dependencies():
    analyzed = check("""
program p;
const N = 4, M = N * 2 + 1;
output y;
begin
  y := M;
end.
""")
    assert analyzed.consts == {"N": 4, "M": 9}


def test_array_sizes_resolve():
    analyzed = check("""
program p;
const N = 3;
input a[N * 2];
output y;
begin
  y := a[5];
end.
""")
    assert analyzed.array_sizes["a"] == 6


def test_duplicate_declaration():
    expect_error("""
program p;
input x;
var x;
output y;
begin y := x; end.
""", "declared twice")


def test_undeclared_symbol():
    expect_error("""
program p;
output y;
begin y := nope; end.
""", "undeclared")


def test_assign_to_const():
    expect_error("""
program p;
const K = 1;
output y;
begin K := 2; y := 0; end.
""", "const")


def test_array_requires_index():
    expect_error("""
program p;
input a[4]; output y;
begin y := a; end.
""", "requires an index")


def test_scalar_cannot_be_indexed():
    expect_error("""
program p;
input x; output y;
begin y := x[0]; end.
""", "cannot be indexed")


def test_constant_index_bounds_checked():
    expect_error("""
program p;
input a[4]; output y;
begin y := a[4]; end.
""", "out of bounds")


def test_negative_array_size():
    expect_error("""
program p;
const N = 0;
input a[N]; output y;
begin y := 1; end.
""", "positive size")


def test_empty_loop_range():
    expect_error("""
program p;
output y;
begin
  for i in 3 .. 1 do
    y := 1;
  end;
end.
""", "empty")


def test_loop_variable_shadowing():
    expect_error("""
program p;
input i; output y;
begin
  for i in 0 .. 3 do
    y := 1;
  end;
end.
""", "shadows")


def test_loop_variable_not_a_value():
    expect_error("""
program p;
output y;
begin
  for i in 0 .. 3 do
    y := i;
  end;
end.
""", "array indexes")


def test_loop_variable_not_assignable():
    expect_error("""
program p;
output y;
begin
  for i in 0 .. 3 do
    i := 1;
  end;
end.
""", "loop variable")


def test_only_innermost_loop_var_indexes():
    expect_error("""
program p;
input a[4]; output y;
begin
  for i in 0 .. 1 do
    for j in 0 .. 1 do
      y := a[i];
    end;
  end;
end.
""", "innermost")


def test_affine_index_analysis_accepts_common_shapes():
    analyzed = check("""
program p;
const N = 8;
input a[2*N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[2*i+1] + a[N-1-i] + a[3];
  end;
  y := acc;
end.
""")
    assert analyzed.array_sizes["a"] == 16


def test_nonaffine_index_rejected():
    expect_error("""
program p;
input a[16]; output y;
begin
  for i in 0 .. 3 do
    y := a[i*i];
  end;
end.
""", "affine")


def test_delay_depth_tracking():
    analyzed = check("""
program p;
input x; output y;
begin
  y := x@1 + x@3;
end.
""")
    assert analyzed.delay_depths == {"x": 3}


def test_delay_on_array_rejected():
    expect_error("""
program p;
input a[4]; output y;
begin y := a@1; end.
""", "scalar")
