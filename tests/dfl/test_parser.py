"""Unit tests for the MiniDFL parser."""

import pytest

from repro.dfl.ast_nodes import (
    Assign, Binary, Delay, For, Index, Num, Unary, Var,
)
from repro.dfl.errors import DflSyntaxError
from repro.dfl.parser import parse

MINIMAL = """
program p;
output y;
begin
  y := 1;
end.
"""


def test_minimal_program():
    ast = parse(MINIMAL)
    assert ast.name == "p"
    assert len(ast.decls) == 1
    assert len(ast.body) == 1
    statement = ast.body[0]
    assert isinstance(statement, Assign)
    assert statement.target == "y"
    assert isinstance(statement.expr, Num)


def test_declarations_with_arrays_and_lists():
    ast = parse("""
program p;
const N = 4, M = N*2;
input a[N], b;
var t;
output y[M];
begin
  y[0] := 1;
end.
""")
    roles = [(d.role, d.name) for d in ast.decls]
    assert roles == [("const", "N"), ("const", "M"), ("input", "a"),
                     ("input", "b"), ("var", "t"), ("output", "y")]


def test_operator_precedence():
    ast = parse("""
program p;
input a, b, c; output y;
begin
  y := a + b * c;
end.
""")
    expr = ast.body[0].expr
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.right, Binary) and expr.right.op == "*"


def test_shift_binds_looser_than_additive():
    ast = parse("""
program p;
input a, b; output y;
begin
  y := a + b >> 2;
end.
""")
    expr = ast.body[0].expr
    assert expr.op == ">>"
    assert expr.left.op == "+"


def test_parentheses_override():
    ast = parse("""
program p;
input a, b, c; output y;
begin
  y := (a + b) * c;
end.
""")
    expr = ast.body[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary_and_builtins():
    ast = parse("""
program p;
input a, b; output y;
begin
  y := sat(-a + abs(b)) & min(a, b);
end.
""")
    expr = ast.body[0].expr
    assert expr.op == "&"
    assert isinstance(expr.left, Unary) and expr.left.op == "sat"
    assert isinstance(expr.right, Binary) and expr.right.op == "min"


def test_for_loop_and_indexing():
    ast = parse("""
program p;
const N = 8;
input a[N]; output y[N];
begin
  for i in 0 .. N-1 do
    y[i] := a[N-1-i];
  end;
end.
""")
    loop = ast.body[0]
    assert isinstance(loop, For)
    assert loop.var == "i"
    inner = loop.body[0]
    assert isinstance(inner.expr, Index)


def test_delay_expression():
    ast = parse("""
program p;
input x; output y;
begin
  y := x@2;
end.
""")
    expr = ast.body[0].expr
    assert isinstance(expr, Delay)
    assert expr.depth == 2


def test_missing_semicolon_reports_position():
    with pytest.raises(DflSyntaxError) as excinfo:
        parse("program p;\noutput y;\nbegin\n  y := 1\nend.")
    assert excinfo.value.line >= 4


def test_missing_end_dot():
    with pytest.raises(DflSyntaxError):
        parse("program p; output y; begin y := 1; end")


def test_garbage_after_program():
    with pytest.raises(DflSyntaxError):
        parse("program p; output y; begin y := 1; end. extra")


def test_expression_error_message():
    with pytest.raises(DflSyntaxError) as excinfo:
        parse("program p; output y; begin y := * 2; end.")
    assert "expression" in str(excinfo.value)


def test_unclosed_body():
    with pytest.raises(DflSyntaxError) as excinfo:
        parse("program p; output y; begin y := 1;")
    assert "end of input" in str(excinfo.value)
