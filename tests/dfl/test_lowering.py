"""Unit tests for AST-to-IR lowering (incl. semantics round trips)."""

import pytest

from repro.dfl import compile_dfl
from repro.dfl.errors import DflSemanticError
from repro.dfl.lowering import history_array
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.program import Block, Loop

FPC = FixedPointContext(16)


def run(source, **inputs):
    program = compile_dfl(source)
    env = program.initial_environment()
    env.update(inputs)
    program.run(env, FPC)
    return program, env


def test_sequential_forwarding_within_block():
    _, env = run("""
program p;
input x; output y;
var t;
begin
  t := x + 1;
  y := t * 2;
end.
""", x=10)
    assert env["y"] == 22


def test_multiple_writes_last_wins():
    _, env = run("""
program p;
output y;
begin
  y := 1;
  y := 2;
end.
""")
    assert env["y"] == 2


def test_loop_normalization_nonzero_lower_bound():
    _, env = run("""
program p;
input a[6]; output y;
var acc;
begin
  acc := 0;
  for i in 2 .. 4 do
    acc := acc + a[i];
  end;
  y := acc;
end.
""", a=[1, 2, 4, 8, 16, 32])
    assert env["y"] == 4 + 8 + 16


def test_reverse_walk_index():
    _, env = run("""
program p;
const N = 4;
input a[N]; output y[N];
begin
  for i in 0 .. N-1 do
    y[i] := a[N-1-i];
  end;
end.
""", a=[1, 2, 3, 4])
    assert env["y"] == [4, 3, 2, 1]


def test_interleaved_stride_two():
    _, env = run("""
program p;
const N = 2;
input a[2*N]; output y[2*N];
begin
  for i in 0 .. N-1 do
    y[2*i]   := a[2*i+1];
    y[2*i+1] := a[2*i];
  end;
end.
""", a=[1, 2, 3, 4])
    assert env["y"] == [2, 1, 4, 3]


def test_delay_lines_shift_once_per_run():
    program = compile_dfl("""
program p;
input x; output y;
begin
  y := x@1 + x@2;
end.
""")
    env = program.initial_environment()
    history = history_array("x")
    assert history in env and env[history] == [0, 0]
    outs = []
    for sample in [10, 20, 30, 40]:
        env["x"] = sample
        program.run(env, FPC)
        outs.append(env["y"])
    # y[n] = x[n-1] + x[n-2]
    assert outs == [0, 10, 30, 50]


def test_delay_line_symbol_is_declared_state():
    program = compile_dfl("""
program p;
input x; output y;
begin
  y := x@1;
end.
""")
    symbol = program.symbols[history_array("x")]
    assert symbol.role == "state"
    assert symbol.size == 1


def test_constants_fold_into_const_nodes():
    program = compile_dfl("""
program p;
const K = 5;
output y;
begin
  y := K;
end.
""")
    block = program.body[0]
    assert isinstance(block, Block)
    assert "#5" in block.dfg.dump()


def test_blocks_split_around_loops():
    program = compile_dfl("""
program p;
const N = 2;
input a[N]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + a[i];
  end;
  y := acc;
end.
""")
    shapes = [type(item).__name__ for item in program.body]
    assert shapes == ["Block", "Loop", "Block"]


def test_ambiguous_array_aliasing_rejected():
    with pytest.raises(DflSemanticError) as excinfo:
        compile_dfl("""
program p;
input a[8]; output y;
begin
  for i in 0 .. 3 do
    a[i] := 1;
    y := a[2*i];
  end;
end.
""")
    assert "disambiguate" in str(excinfo.value)


def test_same_coeff_different_offset_is_fine():
    _, env = run("""
program p;
const N = 3;
var a[N+1];
output y;
begin
  for i in 0 .. N-1 do
    a[i] := 7;
    y := a[i+1];
  end;
end.
""")
    # reading a[i+1] after writing a[i] is statically distinct
    assert env["y"] == 0


def test_write_then_read_same_cell_forwards():
    _, env = run("""
program p;
var a[4];
output y;
begin
  for i in 0 .. 3 do
    a[i] := 5;
    y := a[i];
  end;
end.
""")
    assert env["y"] == 5
