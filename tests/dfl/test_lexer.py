"""Unit tests for the MiniDFL tokenizer."""

import pytest

from repro.dfl.errors import DflSyntaxError
from repro.dfl.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_empty_input_yields_eof_only():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_keywords_vs_identifiers():
    assert kinds("program fir") == [("keyword", "program"),
                                    ("ident", "fir")]
    assert kinds("forx for") == [("ident", "forx"), ("keyword", "for")]


def test_numbers_decimal_and_hex():
    assert kinds("42 0x1F") == [("number", "42"), ("number", "0x1F")]


def test_bad_number_rejected():
    with pytest.raises(DflSyntaxError):
        tokenize("0xZZ")


def test_multichar_operators_maximal_munch():
    assert kinds("a := b .. c << d >> e") == [
        ("ident", "a"), ("op", ":="), ("ident", "b"), ("op", ".."),
        ("ident", "c"), ("op", "<<"), ("ident", "d"), ("op", ">>"),
        ("ident", "e"),
    ]


def test_single_char_operators():
    text = "+-*&|^~()[];,@="
    tokens = kinds(text)
    assert all(kind == "op" for kind, _ in tokens)
    assert [text for _, text in tokens] == list(text)


def test_comments_are_skipped_and_may_span_lines():
    source = "a { comment\nstill comment } b"
    assert kinds(source) == [("ident", "a"), ("ident", "b")]


def test_unterminated_comment_reports_start_position():
    with pytest.raises(DflSyntaxError) as excinfo:
        tokenize("x\n{ never closed")
    assert excinfo.value.line == 2


def test_positions_are_tracked():
    tokens = tokenize("a\n  bc")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(DflSyntaxError) as excinfo:
        tokenize("a ? b")
    assert "?" in str(excinfo.value)


def test_delay_operator_tokenizes():
    assert kinds("x@1") == [("ident", "x"), ("op", "@"), ("number", "1")]
