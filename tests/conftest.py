"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.fixedpoint import FixedPointContext


@pytest.fixture(scope="session")
def fpc16() -> FixedPointContext:
    return FixedPointContext(16)


@pytest.fixture(scope="session")
def oracle16():
    """The 16-bit IR-level conformance oracle (wrap-around mode)."""
    from repro.verify.oracle import Oracle
    return Oracle(FixedPointContext(16))


@pytest.fixture()
def tc25():
    from repro.targets.tc25 import TC25
    return TC25()


@pytest.fixture()
def m56():
    from repro.targets.m56 import M56
    return M56()


@pytest.fixture()
def risc16():
    from repro.targets.risc import Risc16
    return Risc16()


def reference_run(spec, seed: int, fpc=None):
    """Run a kernel's MiniDFL reference semantics; returns the env."""
    if fpc is None:
        fpc = FixedPointContext(16)
    program = spec.program
    env = program.initial_environment()
    for key, value in spec.inputs(seed=seed).items():
        env[key] = list(value) if isinstance(value, list) else value
    program.run(env, fpc)
    return env


def outputs_of(spec, env):
    """Extract the output symbols from an environment."""
    return {
        name: env[name]
        for name, symbol in spec.program.symbols.items()
        if symbol.role == "output"
    }
