"""Unit tests for self-test program generation (Sec. 4.5)."""

import pytest

from repro.selftest.generator import (
    Fault, FaultySim, fault_universe, generate_self_test, run_self_test,
)
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def test_fault_universe_per_family():
    assert any(f.original == "APAC" for f in fault_universe(TC25()))
    assert any(f.original == "MUL" for f in fault_universe(Risc16()))


def test_generation_is_deterministic():
    first = generate_self_test(TC25(), programs=4, seed=9)
    second = generate_self_test(TC25(), programs=4, seed=9)
    assert first.signatures == second.signatures
    assert [p.words() for p in first.programs] == \
        [p.words() for p in second.programs]


def test_faulty_sim_swaps_opcode():
    target = TC25()
    faulty = FaultySim(target, Fault("ADD", "SUB"))
    state = faulty.initial_state()
    from repro.codegen.asm import AsmInstr, Mem
    state.mem[0] = 5
    state.regs["acc"] = 10
    operand = Mem("m", mode="direct", address=0)
    faulty.execute(state, AsmInstr(opcode="ADD", operands=(operand,)))
    assert state.regs["acc"] == 5        # executed as SUB


def test_coverage_reasonable_on_tc25():
    report = run_self_test(TC25(), programs=10, seed=0)
    assert report.coverage >= 0.6
    assert report.detected
    # summary mentions the target and the score
    text = report.summary()
    assert "tc25" in text and "%" in text


def test_coverage_monotone_in_program_count():
    few = run_self_test(TC25(), programs=2, seed=5)
    suite_many = generate_self_test(TC25(), programs=14, seed=5)
    many = run_self_test(TC25(), suite=suite_many)
    assert many.coverage >= few.coverage


def test_risc_self_test_runs():
    report = run_self_test(Risc16(), programs=8, seed=1)
    assert report.coverage >= 0.5


def test_undetected_faults_are_reported():
    # an unused instruction's fault can't be detected by any program
    # that never emits it; DMOV never appears in random expression code
    report = run_self_test(TC25(), programs=6, seed=2)
    undetected_names = {fault.name for fault in report.undetected}
    assert "DMOV->NOP" in undetected_names
