"""The artifact cache under multi-process contention.

The farm's workers and the compile service's server process all hammer
one cache directory concurrently.  The store's contract under that
load: a reader sees either *nothing* (a clean miss) or a *complete,
valid* artifact -- never a torn entry -- because every write goes to a
private temp file and lands via ``os.replace``.  These tests race real
processes (not threads) against one directory and check exactly that,
plus the hygiene conditions: no temp-file litter, no corrupt-entry
counts, byte-identical payloads on every hit.
"""

from __future__ import annotations

import multiprocessing
import pickle

from repro.cache import ArtifactCache

ROUNDS = 30


def _build_artifact():
    """One real compiled program (cheap kernel, deterministic)."""
    from repro.api import _resolve_target
    from repro.codegen.pipeline import RecordCompiler
    from repro.dspstone import kernel
    compiler = RecordCompiler(_resolve_target("tc25"), None)
    return compiler.compile(kernel("real_update").program)


def _writer(root, key, rounds, first_put, queue) -> None:
    """Overwrite the same entry as fast as possible."""
    try:
        cache = ArtifactCache(root)
        compiled = _build_artifact()
        for index in range(rounds):
            cache.put(key, compiled)
            if index == 0:
                first_put.set()
        queue.put(("writer", cache.stats.store_failures))
    except BaseException as exc:                       # noqa: BLE001
        first_put.set()
        queue.put(("writer-crash", repr(exc)))


def _reader(root, key, expected_listing, rounds, first_put,
            queue) -> None:
    """Read the entry in a tight loop; grade every hit."""
    try:
        first_put.wait(timeout=120)
        cache = ArtifactCache(root)
        hits = 0
        wrong = 0
        for _ in range(rounds):
            loaded = cache.get(key)
            if loaded is None:
                continue
            hits += 1
            if loaded.listing() != expected_listing:
                wrong += 1
        queue.put(("reader", hits, wrong,
                   cache.stats.corrupt_entries))
    except BaseException as exc:                       # noqa: BLE001
        queue.put(("reader-crash", repr(exc)))


def test_racing_put_and_get_never_shows_a_torn_entry(tmp_path):
    """One process rewrites an entry while another reads it: every
    read is a clean miss or a complete artifact, never garbage."""
    root = tmp_path / "cache"
    cache = ArtifactCache(root)
    from repro.dspstone import kernel
    program = kernel("real_update").program
    expected = _build_artifact().listing()
    key = cache.key_for(program, "record", None, "tc25")
    assert key is not None

    queue = multiprocessing.Queue()
    first_put = multiprocessing.Event()
    writer = multiprocessing.Process(
        target=_writer, args=(root, key, ROUNDS, first_put, queue))
    reader = multiprocessing.Process(
        target=_reader,
        args=(root, key, expected, ROUNDS * 3, first_put, queue))
    writer.start()
    reader.start()
    writer.join(timeout=300)
    reader.join(timeout=300)
    assert not writer.is_alive() and not reader.is_alive()

    outcomes = {}
    for _ in range(2):
        entry = queue.get(timeout=30)
        outcomes[entry[0]] = entry[1:]
    assert "writer" in outcomes, outcomes
    assert "reader" in outcomes, outcomes
    (store_failures,) = outcomes["writer"]
    hits, wrong, corrupt = outcomes["reader"]
    assert store_failures == 0
    assert wrong == 0, f"{wrong} hits returned a wrong artifact"
    assert corrupt == 0, "reader saw a torn entry"
    assert hits > 0, "reader never hit despite synchronized start"

    # hygiene: the final state is complete entries, zero temp litter
    leftovers = [path for path in root.rglob("*")
                 if path.is_file() and path.suffix != ".pkl"]
    assert leftovers == []
    final = ArtifactCache(root).get(key)
    assert final is not None and final.listing() == expected


def test_two_processes_computing_the_same_key_converge(tmp_path):
    """Two independent processes compile + put the same program: both
    succeed, and the surviving entry equals what either produced --
    the last atomic replace simply wins with identical bytes."""
    root = tmp_path / "cache"
    cache = ArtifactCache(root)
    from repro.dspstone import kernel
    program = kernel("real_update").program
    key = cache.key_for(program, "record", None, "tc25")
    assert key is not None

    queue = multiprocessing.Queue()
    events = [multiprocessing.Event(), multiprocessing.Event()]
    racers = [multiprocessing.Process(
        target=_writer, args=(root, key, 1, event, queue))
        for event in events]
    for racer in racers:
        racer.start()
    for racer in racers:
        racer.join(timeout=300)
    results = [queue.get(timeout=30) for _ in racers]
    assert all(tag == "writer" and failures == 0
               for tag, failures in results), results

    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.listing() == _build_artifact().listing()
    assert cache.stats.corrupt_entries == 0


def test_interrupted_write_is_invisible_to_readers(tmp_path):
    """A write that dies mid-flight (simulated: temp file left on
    disk, no rename) must look like a miss for its key and leave
    sibling entries untouched."""
    root = tmp_path / "cache"
    cache = ArtifactCache(root)
    compiled = _build_artifact()
    key = "ab" + "0" * 62
    assert cache.put(key, compiled)

    # simulate a crashed writer: partial temp bytes beside the entry
    entry = root / key[:2] / f"{key}.pkl"
    torn = entry.with_name(f".{key}.99999.0.tmp")
    torn.write_bytes(pickle.dumps(compiled)[:40])

    loaded = cache.get(key)
    assert loaded is not None              # the real entry is intact
    assert loaded.listing() == compiled.listing()
    assert cache.stats.corrupt_entries == 0
    missing = cache.get("ab" + "f" * 62)   # the in-flight key: a miss
    assert missing is None
