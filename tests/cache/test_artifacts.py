"""The persistent artifact cache: correct, keyed, bounded, unbreakable.

The contract under test (see ``repro.cache.artifacts``): a cache hit
is byte-identical to a fresh compile; any key ingredient change misses;
corruption of any stored byte degrades to a recompile with a logged
warning, never a crash or a wrong artifact; the store never exceeds its
size bound; and activation is strictly opt-in.
"""

from __future__ import annotations

import logging
import pickle
import random

import pytest

import repro.cache
from repro.cache import ArtifactCache, cached_compile, set_code_version
from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.targets.tc25 import TC25
from repro.verify.progen import generate_program


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture()
def active(cache):
    """Install ``cache`` process-wide for the duration of one test."""
    repro.cache._ACTIVE = cache
    yield cache
    repro.cache._ACTIVE = None


def _program(seed: int = 7):
    return generate_program(random.Random(seed), seed)


def _fresh_compile(program, target=None):
    return RecordCompiler(target or TC25())._compile_uncached(program)


# ----------------------------------------------------------------------
# Store / load round trip
# ----------------------------------------------------------------------

def test_round_trip_is_byte_identical(cache):
    program = _program()
    target = TC25()
    compiled = _fresh_compile(program, target)
    key = cache.key_for(program, "record", RecordOptions(), target.name)
    assert cache.put(key, compiled)
    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.listing() == compiled.listing()
    assert loaded.memory_map.addresses == compiled.memory_map.addresses
    assert loaded.stats["artifact_cache"] == "hit"
    # the marker is a property of the *loaded* copy only:
    assert "artifact_cache" not in compiled.stats
    assert (cache.stats.hits, cache.stats.misses) == (1, 0)


def test_miss_on_empty_cache(cache):
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    assert cache.get(key) is None
    assert cache.stats.misses == 1


def test_no_stray_temp_files_after_put(cache):
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    cache.put(key, _fresh_compile(program))
    assert not list(cache.root.rglob("*.tmp"))
    assert cache.entry_count() == 1


# ----------------------------------------------------------------------
# Key derivation: every ingredient moves the key
# ----------------------------------------------------------------------

def test_key_ingredients(cache):
    program = _program(1)
    base = cache.key_for(program, "record", RecordOptions(), "tc25")
    assert base == cache.key_for(program, "record", RecordOptions(),
                                 "tc25"), "keys must be deterministic"
    assert base != cache.key_for(_program(2), "record", RecordOptions(),
                                 "tc25")
    assert base != cache.key_for(program, "baseline", RecordOptions(),
                                 "tc25")
    assert base != cache.key_for(program, "record",
                                 RecordOptions(algebraic=False), "tc25")
    assert base != cache.key_for(program, "record", RecordOptions(),
                                 "m56")


def test_code_version_invalidates_keys(cache):
    program = _program(1)
    base = cache.key_for(program, "record", RecordOptions(), "tc25")
    previous = set_code_version("pretend-the-code-changed")
    try:
        assert base != cache.key_for(program, "record", RecordOptions(),
                                     "tc25")
    finally:
        set_code_version(previous)


def test_structurally_equal_programs_share_a_key(cache):
    a, b = _program(3), _program(3)
    assert a is not b
    assert cache.key_for(a, "record", RecordOptions(), "tc25") \
        == cache.key_for(b, "record", RecordOptions(), "tc25")


# ----------------------------------------------------------------------
# Corruption tolerance
# ----------------------------------------------------------------------

@pytest.mark.parametrize("garbage", [
    b"", b"not a pickle at all",
    pickle.dumps({"wrong": "type"}),
], ids=["empty", "garbage-bytes", "wrong-type"])
def test_corrupt_entry_degrades_to_miss(cache, caplog, garbage):
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    cache.put(key, _fresh_compile(program))
    path = cache._path(key)
    path.write_bytes(garbage)
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        assert cache.get(key) is None
    assert cache.stats.corrupt_entries == 1
    assert any("corrupt" in record.message for record in caplog.records)
    assert not path.exists(), "a corrupt entry must be dropped"


def test_truncated_entry_degrades_to_miss(cache):
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    cache.put(key, _fresh_compile(program))
    path = cache._path(key)
    path.write_bytes(path.read_bytes()[:50])
    assert cache.get(key) is None
    assert cache.stats.corrupt_entries == 1


def test_unwritable_root_does_not_crash(tmp_path):
    target_file = tmp_path / "not-a-directory"
    target_file.write_text("occupied")
    cache = ArtifactCache(target_file / "cache")   # mkdir will fail
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    assert cache.put(key, _fresh_compile(program)) is False
    assert cache.stats.store_failures == 1
    assert cache.get(key) is None


# ----------------------------------------------------------------------
# LRU size bound
# ----------------------------------------------------------------------

def test_size_bound_evicts_oldest_first(cache):
    import os
    cache.max_bytes = 30_000          # fits ~3 artifacts of ~10 KB
    target = TC25()
    keys = []
    for seed in range(6):
        program = _program(seed)
        key = cache.key_for(program, "record", RecordOptions(),
                            target.name)
        cache.put(key, _fresh_compile(program, target))
        keys.append(key)
        # Spread mtimes so "oldest" is well-defined on coarse clocks.
        os.utime(cache._path(key), (seed, seed))
    assert cache.total_bytes() <= cache.max_bytes
    assert cache.stats.evictions > 0
    assert cache.get(keys[-1]) is not None, "newest entry must survive"
    assert cache.get(keys[0]) is None, "oldest entry must be evicted"


def test_read_hits_touch_mtime_and_are_counted(cache):
    """A hit refreshes the entry's LRU position (mtime) and bumps the
    ``touches`` counter; misses touch nothing."""
    import os
    program = _program()
    key = cache.key_for(program, "record", RecordOptions(), "tc25")
    cache.put(key, _fresh_compile(program))
    stale = 1_000_000_000             # far in the past
    os.utime(cache._path(key), (stale, stale))

    assert cache.get(key) is not None
    assert cache.stats.touches == 1
    assert cache._path(key).stat().st_mtime > stale, \
        "hit must refresh the entry's eviction clock"

    assert cache.get("ff" + "0" * 62) is None
    assert cache.stats.touches == 1   # misses don't touch
    assert cache.stats.to_json()["touches"] == 1


# ----------------------------------------------------------------------
# cached_compile wiring (RecordCompiler.compile consults the cache)
# ----------------------------------------------------------------------

def test_compile_hits_cache_on_second_call(active):
    program = _program()
    compiler = RecordCompiler(TC25())
    first = compiler.compile(program)
    second = compiler.compile(program)
    assert "artifact_cache" not in first.stats
    assert second.stats.get("artifact_cache") == "hit"
    assert second.listing() == first.listing()
    assert (active.stats.stores, active.stats.hits) == (1, 1)


def test_cache_off_means_no_disk_traffic(cache):
    assert repro.cache.active_cache() is None
    program = _program()
    RecordCompiler(TC25()).compile(program)
    assert cache.entry_count() == 0


def test_uncacheable_program_compiles_through():
    """key_for=None (spec form can't express it) must not break compile."""
    calls = []

    class _Compiler:
        name = "record"
        options = RecordOptions()

        class target:
            name = "tc25"

    repro.cache._ACTIVE = ArtifactCache(root="/nonexistent-unused")
    try:
        result = cached_compile(
            _Compiler(), object(),          # not a Program: spec fails
            lambda prog: calls.append(prog) or "built")
    finally:
        repro.cache._ACTIVE = None
    assert result == "built"
    assert len(calls) == 1


def test_configure_installs_and_removes(tmp_path):
    installed = repro.cache.configure(tmp_path / "c", max_bytes=123)
    try:
        assert repro.cache.active_cache() is installed
        assert installed.max_bytes == 123
    finally:
        assert repro.cache.configure(None) is None
    assert repro.cache.active_cache() is None
