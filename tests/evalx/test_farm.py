"""The compile farm: serial and parallel runs are indistinguishable.

``compile_many`` promises result lists in job order with identical
contents whether the jobs ran in-process or on a process pool, and that
a failing job travels back as a :class:`FarmResult` error instead of
killing the farm.  The parallel runs here force a pool even on a
single-core machine (``max_workers=2``), so pickling of jobs and
compiled programs is genuinely exercised.
"""

import pytest

from repro.evalx.farm import (
    CompileJob, FarmResult, compile_many, default_workers, run_job,
)

_JOBS = [
    CompileJob(kernel=kernel, compiler=compiler, target=target)
    for kernel in ("real_update", "fir", "dot_product")
    for compiler, target in (("record", "tc25"), ("baseline", "tc25"),
                             ("record", "m56"), ("record", "risc16"),
                             ("hand", "tc25"))
]

# The baseline compiler is target-specific by design: pointing it at
# the M56 raises CompileError inside the worker.
_BAD_JOB = CompileJob(kernel="fir", compiler="baseline", target="m56")


def _fingerprint(results):
    return [
        (result.job, result.ok, result.error_type,
         result.compiled.listing() if result.ok else result.error)
        for result in results
    ]


def test_serial_matches_parallel():
    serial = compile_many(_JOBS, parallel=False)
    parallel = compile_many(_JOBS, parallel=True, max_workers=2)
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_results_in_job_order():
    results = compile_many(_JOBS, parallel=True, max_workers=2)
    assert [result.job for result in results] == _JOBS
    assert all(result.ok for result in results)


@pytest.mark.parametrize("parallel", [False, True],
                         ids=["serial", "parallel"])
def test_compile_error_is_captured_in_order(parallel):
    """A CompileError from one worker neither kills the farm nor
    perturbs the ordering of its neighbours' results."""
    jobs = [_JOBS[0], _BAD_JOB, _JOBS[2]]
    results = compile_many(jobs, parallel=parallel, max_workers=2)
    assert [result.job for result in results] == jobs
    good_first, bad, good_last = results
    assert good_first.ok and good_last.ok
    assert not bad.ok
    assert bad.compiled is None
    assert bad.error_type == "CompileError"
    assert "target-specific" in bad.error
    # and the same failure reads identically straight from run_job:
    direct = run_job(_BAD_JOB)
    assert (direct.error_type, direct.error) == (bad.error_type,
                                                 bad.error)


def test_unknown_names_are_captured_not_raised():
    results = compile_many([
        CompileJob(kernel="no_such_kernel"),
        CompileJob(kernel="fir", compiler="no_such_compiler"),
        CompileJob(kernel="fir", target="no_such_target"),
    ], parallel=False)
    assert [result.ok for result in results] == [False, False, False]
    assert all(isinstance(result, FarmResult) for result in results)


def test_auto_mode_runs_everything():
    """parallel=None (auto) must behave like the other modes."""
    auto = compile_many(_JOBS[:5])
    serial = compile_many(_JOBS[:5], parallel=False)
    assert _fingerprint(auto) == _fingerprint(serial)


def test_default_workers_bounded():
    assert 1 <= default_workers() <= 8
