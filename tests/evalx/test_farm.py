"""The compile farm: serial and parallel runs are indistinguishable.

``compile_many`` promises result lists in job order with identical
contents whether the jobs ran in-process or on a process pool, and that
a failing job travels back as a :class:`FarmResult` error instead of
killing the farm.  The parallel runs here force a pool even on a
single-core machine (``max_workers=2``), so pickling of jobs and
compiled programs is genuinely exercised.
"""

import pytest

from repro.evalx.farm import (
    CompileJob, FarmResult, compile_many, default_workers, run_job,
)

_JOBS = [
    CompileJob(kernel=kernel, compiler=compiler, target=target)
    for kernel in ("real_update", "fir", "dot_product")
    for compiler, target in (("record", "tc25"), ("baseline", "tc25"),
                             ("record", "m56"), ("record", "risc16"),
                             ("hand", "tc25"))
]

# The baseline compiler is target-specific by design: pointing it at
# the M56 raises CompileError inside the worker.
_BAD_JOB = CompileJob(kernel="fir", compiler="baseline", target="m56")


def _fingerprint(results):
    return [
        (result.job, result.ok, result.error_type,
         result.compiled.listing() if result.ok else result.error)
        for result in results
    ]


def test_serial_matches_parallel():
    serial = compile_many(_JOBS, parallel=False)
    parallel = compile_many(_JOBS, parallel=True, max_workers=2)
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_results_in_job_order():
    results = compile_many(_JOBS, parallel=True, max_workers=2)
    assert [result.job for result in results] == _JOBS
    assert all(result.ok for result in results)


@pytest.mark.parametrize("parallel", [False, True],
                         ids=["serial", "parallel"])
def test_compile_error_is_captured_in_order(parallel):
    """A CompileError from one worker neither kills the farm nor
    perturbs the ordering of its neighbours' results."""
    jobs = [_JOBS[0], _BAD_JOB, _JOBS[2]]
    results = compile_many(jobs, parallel=parallel, max_workers=2)
    assert [result.job for result in results] == jobs
    good_first, bad, good_last = results
    assert good_first.ok and good_last.ok
    assert not bad.ok
    assert bad.compiled is None
    assert bad.error_type == "CompileError"
    assert "target-specific" in bad.error
    # and the same failure reads identically straight from run_job:
    direct = run_job(_BAD_JOB)
    assert (direct.error_type, direct.error) == (bad.error_type,
                                                 bad.error)


def test_unknown_names_are_captured_not_raised():
    results = compile_many([
        CompileJob(kernel="no_such_kernel"),
        CompileJob(kernel="fir", compiler="no_such_compiler"),
        CompileJob(kernel="fir", target="no_such_target"),
    ], parallel=False)
    assert [result.ok for result in results] == [False, False, False]
    assert all(isinstance(result, FarmResult) for result in results)


def test_auto_mode_runs_everything():
    """parallel=None (auto) must behave like the other modes."""
    auto = compile_many(_JOBS[:5])
    serial = compile_many(_JOBS[:5], parallel=False)
    assert _fingerprint(auto) == _fingerprint(serial)


def test_default_workers_bounded():
    assert 1 <= default_workers() <= 8


# ----------------------------------------------------------------------
# Batch-level dedup
# ----------------------------------------------------------------------

def test_duplicate_jobs_compile_once_and_fan_back_out(monkeypatch):
    """Five copies of one job dispatch a single compile; every copy
    still gets its own result object carrying its own job."""
    import repro.evalx.farm as farm

    calls = []
    real_run_job = farm.run_job

    def counting_run_job(job):
        calls.append(job)
        return real_run_job(job)

    monkeypatch.setattr(farm, "run_job", counting_run_job)
    job = CompileJob(kernel="real_update")
    jobs = [job, CompileJob(kernel="fir"), job, job,
            CompileJob(kernel="real_update")]      # equal by content
    results = farm.compile_many(jobs, parallel=False)

    assert len(calls) == 2                         # one per unique key
    assert [result.job for result in results] == jobs
    assert all(result.ok for result in results)
    listings = {result.compiled.listing()
                for result in results if result.job.kernel == "real_update"}
    assert len(listings) == 1
    # duplicates share the artifact, not the result wrapper
    assert results[0] is not results[2]
    assert results[0].compiled is results[2].compiled


def test_dedup_matches_undeduped_serial_run():
    """Fan-out must be invisible: a list with duplicates returns the
    same fingerprint as compiling every entry individually."""
    jobs = [_JOBS[0], _JOBS[1], _JOBS[0], _JOBS[1], _JOBS[0]]
    deduped = compile_many(jobs, parallel=False)
    individually = [compile_many([job], parallel=False)[0]
                    for job in jobs]
    assert _fingerprint(deduped) == _fingerprint(individually)


def test_fresh_jobs_are_exempt_from_dedup(monkeypatch):
    """``fresh`` jobs measure cold compiles -- every instance must
    really run, even when equal by content."""
    import repro.evalx.farm as farm

    calls = []
    real_run_job = farm.run_job

    def counting_run_job(job):
        calls.append(job)
        return real_run_job(job)

    monkeypatch.setattr(farm, "run_job", counting_run_job)
    jobs = [CompileJob(kernel="real_update", fresh=True)
            for _ in range(3)]
    results = farm.compile_many(jobs, parallel=False)
    assert len(calls) == 3
    assert all(result.ok for result in results)


def test_verify_jobs_dedup_on_content(monkeypatch):
    import repro.evalx.farm as farm
    from repro.dspstone import kernel
    from repro.verify.corpus import program_to_spec

    spec = program_to_spec(kernel("real_update").program)
    inputs = kernel("real_update").inputs(seed=0)
    job = farm.VerifyJob(program_spec=spec, input_sets=(inputs,),
                         targets=("tc25",))
    twin = farm.VerifyJob(program_spec=spec, input_sets=(inputs,),
                          targets=("tc25",))

    calls = []
    real_run = farm.run_verify_job

    def counting_run(verify_job):
        calls.append(verify_job)
        return real_run(verify_job)

    monkeypatch.setattr(farm, "run_verify_job", counting_run)
    results = farm.verify_many([job, twin, job], parallel=False)
    assert len(calls) == 1
    assert [result.job for result in results] == [job, twin, job]
    assert all(result.ok and result.verdict.ok for result in results)


# ----------------------------------------------------------------------
# REPRO_JOBS: the single worker-count override
# ----------------------------------------------------------------------

def test_repro_jobs_overrides_default_workers(monkeypatch):
    from repro.evalx.farm import jobs_override
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert jobs_override() == 5
    assert default_workers() == 5


def test_repro_jobs_garbage_and_floor(monkeypatch):
    from repro.evalx.farm import jobs_override
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert jobs_override() is None
    assert 1 <= default_workers() <= 8
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert jobs_override() == 1          # floor: at least one worker
    monkeypatch.delenv("REPRO_JOBS")
    assert jobs_override() is None


def test_verify_cli_jobs_default_follows_repro_jobs(monkeypatch):
    from repro.verify.__main__ import _default_jobs
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert _default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert _default_jobs() == 3
