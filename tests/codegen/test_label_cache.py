"""The caching fast path is transparent: covers, code and costs are
identical with every cache layer on or off.

Three layers are crossed here -- tree interning (``repro.ir.trees``),
the persistent BURS label cache (``repro.codegen.burg``) and the
compiler-level matcher pool (``repro.codegen.pipeline``) -- against
every DSPStone kernel on every shipped target.
"""

import pytest

from repro.codegen.burg import BurgMatcher
from repro.codegen.grammar import EmitContext
from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.codegen.selector import Selector, wrap_store
from repro.dspstone import all_kernels
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.trees import decompose, set_tree_caching
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

TARGETS = (TC25, M56, Risc16)


def _kernel_assignments(spec, fpc):
    """Every tree assignment of a kernel, from all blocks/loops."""
    from repro.ir.program import Block, Loop

    assignments = []
    counter = [0]

    def walk(items):
        for item in items:
            if isinstance(item, Block):
                block = decompose(item.dfg, temp_counter_start=counter[0],
                                  fpc=fpc)
                counter[0] += sum(1 for a in block if a.is_temp)
                assignments.extend(block)
            elif isinstance(item, Loop):
                walk(item.body)

    walk(spec.program.body)
    return assignments


@pytest.mark.parametrize("target_cls", TARGETS,
                         ids=lambda cls: cls.__name__)
def test_cached_labeling_identical_covers(target_cls):
    """One shared (cached) matcher across all kernels vs a cold matcher
    per assignment: same cover costs, same emitted instructions."""
    target = target_cls()
    grammar = target.grammar()
    shared = BurgMatcher(grammar, "size")          # warm across kernels
    for spec in all_kernels():
        assignments = _kernel_assignments(spec, target.fpc)
        warm_selector = Selector(grammar, fpc=target.fpc, matcher=shared)
        for assignment in assignments:
            cold_selector = Selector(grammar, fpc=target.fpc,
                                     label_cache=False)
            warm_ctx, cold_ctx = EmitContext(), EmitContext()
            warm_cost = warm_selector.select_assignment(assignment,
                                                        warm_ctx)
            cold_cost = cold_selector.select_assignment(assignment,
                                                        cold_ctx)
            assert warm_cost == cold_cost, (spec.name, assignment)
            assert warm_ctx.code.items == cold_ctx.code.items, \
                (spec.name, assignment)


def test_cover_cost_stable_across_repeats():
    """Repeated queries against one matcher never change their answer
    (the label cache returns the same states object it computed)."""
    target = TC25()
    matcher = BurgMatcher(target.grammar(), "size")
    fpc = FixedPointContext(16)
    for spec in all_kernels():
        for assignment in _kernel_assignments(spec, fpc):
            wrapped = wrap_store(assignment.symbol, assignment.index,
                                 assignment.tree)
            first = matcher.cover_cost(wrapped, "stmt")
            again = matcher.cover_cost(wrapped, "stmt")
            assert first == again
    assert matcher.label_hits > 0


def test_label_cache_hit_rate_exceeds_half():
    """Across the DSPStone suite with algebraic selection on, more than
    half of all subtree labelings are answered by the cache (the
    variants of one tree overlap heavily in subtrees)."""
    compiler = RecordCompiler(TC25())    # pooled matcher, default opts
    hits = misses = 0
    for spec in all_kernels():
        stats = compiler.compile(spec.program).stats["selection"]
        assert compiler.options.algebraic
        hits += stats.label_hits
        misses += stats.label_misses
    rate = hits / (hits + misses)
    assert rate > 0.5, f"label-cache hit rate {rate:.1%}"


@pytest.mark.parametrize("target_cls", TARGETS,
                         ids=lambda cls: cls.__name__)
def test_listings_identical_with_caching_off(target_cls):
    """End to end: tree interning off + cold compilers must produce the
    exact same listings as the fully cached path."""
    target_cached = target_cls()
    cached_compiler = RecordCompiler(target_cached)
    cached = {spec.name: cached_compiler.compile(spec.program).listing()
              for spec in all_kernels()}

    previous = set_tree_caching(False)
    try:
        cold = {}
        for spec in all_kernels():
            compiler = RecordCompiler(
                target_cls(), RecordOptions(label_cache=False))
            cold[spec.name] = compiler.compile(spec.program).listing()
    finally:
        set_tree_caching(previous)

    assert cold == cached
