"""Unit + property tests for memory-bank assignment (MAX-CUT)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.membank import (
    annealed_assignment, cut_value, exhaustive_assignment,
    greedy_assignment, normalize_pairs, single_bank_assignment,
)


def pairs_strategy():
    names = st.sampled_from("abcdef")
    return st.lists(st.tuples(names, names), min_size=0, max_size=20)


def test_normalize_pairs_aggregates_and_drops_self_pairs():
    weights = normalize_pairs([("a", "b"), ("b", "a"), ("a", "a"),
                               ("b", "c")])
    assert weights == {("a", "b"): 2, ("b", "c"): 1}


def test_cut_value():
    weights = {("a", "b"): 3, ("b", "c"): 1}
    banks = {"a": "x", "b": "y", "c": "y"}
    assert cut_value(weights, banks) == 3


def test_single_bank_has_zero_cut():
    weights = normalize_pairs([("a", "b"), ("c", "d")])
    banks = single_bank_assignment(weights)
    assert cut_value(weights, banks) == 0
    assert set(banks.values()) == {"x"}


def test_greedy_separates_an_obvious_pair():
    weights = normalize_pairs([("a", "b")] * 5)
    banks = greedy_assignment(weights)
    assert banks["a"] != banks["b"]


def test_greedy_covers_unconstrained_variables():
    banks = greedy_assignment({}, variables=["p", "q"])
    assert set(banks) == {"p", "q"}


def test_exhaustive_guardrail():
    weights = {(f"v{i}", f"v{i+1}"): 1 for i in range(20)}
    with pytest.raises(ValueError):
        exhaustive_assignment(weights)


@settings(max_examples=80, deadline=None)
@given(pairs_strategy())
def test_greedy_and_annealed_bounded_by_exhaustive(pairs):
    weights = normalize_pairs(pairs)
    best = cut_value(weights, exhaustive_assignment(weights))
    greedy = cut_value(weights, greedy_assignment(weights))
    annealed = cut_value(weights, annealed_assignment(weights, seed=1))
    assert greedy <= best
    assert annealed <= best
    assert annealed >= greedy or annealed >= 0


@settings(max_examples=80, deadline=None)
@given(pairs_strategy())
def test_annealing_never_worse_than_greedy(pairs):
    weights = normalize_pairs(pairs)
    greedy = cut_value(weights, greedy_assignment(weights))
    annealed = cut_value(weights, annealed_assignment(weights, seed=2))
    assert annealed >= greedy


@settings(max_examples=50, deadline=None)
@given(pairs_strategy())
def test_assignments_are_total_and_two_valued(pairs):
    weights = normalize_pairs(pairs)
    names = {n for pair in weights for n in pair}
    for assigner in (greedy_assignment, single_bank_assignment):
        banks = assigner(weights)
        assert set(banks) == names
        assert set(banks.values()) <= {"x", "y"}


def test_annealing_is_deterministic_per_seed():
    weights = normalize_pairs([("a", "b"), ("b", "c"), ("c", "d"),
                               ("d", "a"), ("a", "c")])
    first = annealed_assignment(weights, seed=42)
    second = annealed_assignment(weights, seed=42)
    assert first == second


def test_bipartite_graph_fully_cut_by_annealing():
    # K_{2,2}: a,c vs b,d separates all 4 edges.
    weights = normalize_pairs([("a", "b"), ("a", "d"), ("c", "b"),
                               ("c", "d")])
    banks = annealed_assignment(weights, seed=0)
    assert cut_value(weights, banks) == 4
