"""Unit tests for linear-scan register allocation."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, Label, Mem, Reg
from repro.codegen.regalloc import (
    AllocationError, allocate_registers, virtual_registers,
)


def ins(name, *operands):
    return AsmInstr(opcode=name, operands=tuple(operands))


def spill_maker(cell, register, is_store):
    return ins("SW" if is_store else "LW", register, cell)


def spill_cells(count):
    return [Mem(f"$spill{i}", mode="direct", address=100 + i)
            for i in range(count)]


def test_virtual_register_detection():
    instr = ins("ADD", Reg("v0"), Reg("v12"), Reg("R1"))
    assert virtual_registers(instr) == ["v0", "v12"]


def test_simple_allocation_renames():
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("LI", Reg("v1"), Imm(2)),
        ins("ADD", Reg("v2"), Reg("v0"), Reg("v1")),
        ins("SW", Reg("v2"), Mem("y", mode="direct", address=0)),
    ])
    result, spills = allocate_registers(code, ["R1", "R2"],
                                        spill_cells=spill_cells(4),
                                        spill_maker=spill_maker)
    assert spills == 0
    names = [op.name for item in result.instructions()
             for op in item.operands if isinstance(op, Reg)]
    assert all(not name.startswith("v") for name in names)


def test_registers_are_reused_after_death():
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("SW", Reg("v0"), Mem("a", mode="direct", address=0)),
        ins("LI", Reg("v1"), Imm(2)),
        ins("SW", Reg("v1"), Mem("b", mode="direct", address=1)),
    ])
    result, spills = allocate_registers(code, ["R1"])
    assert spills == 0
    uses = [op.name for item in result.instructions()
            for op in item.operands if isinstance(op, Reg)]
    assert set(uses) == {"R1"}


def test_spilling_under_pressure():
    # three simultaneously-live values, two registers
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("LI", Reg("v1"), Imm(2)),
        ins("LI", Reg("v2"), Imm(3)),
        ins("ADD", Reg("v3"), Reg("v0"), Reg("v1")),
        ins("ADD", Reg("v4"), Reg("v3"), Reg("v2")),
        ins("SW", Reg("v4"), Mem("y", mode="direct", address=0)),
    ])
    result, spills = allocate_registers(code, ["R1", "R2"],
                                        spill_cells=spill_cells(4),
                                        spill_maker=spill_maker)
    assert spills >= 1
    opcodes = [i.opcode for i in result.instructions()]
    assert "SW" in opcodes and "LW" in opcodes


def test_pressure_without_spill_support_raises():
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("LI", Reg("v1"), Imm(2)),
        ins("ADD", Reg("v2"), Reg("v0"), Reg("v1")),
    ])
    with pytest.raises(AllocationError):
        allocate_registers(code, ["R1"])


def test_runs_are_independent():
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("SW", Reg("v0"), Mem("a", mode="direct", address=0)),
        Label("L"),
        ins("LI", Reg("v1"), Imm(2)),
        ins("SW", Reg("v1"), Mem("b", mode="direct", address=1)),
    ])
    result, spills = allocate_registers(code, ["R1"])
    assert spills == 0


def test_use_before_definition_rejected():
    code = CodeSeq([
        ins("SW", Reg("v0"), Mem("a", mode="direct", address=0)),
    ])
    with pytest.raises(AllocationError):
        allocate_registers(code, ["R1"])


def test_physical_registers_pass_through():
    code = CodeSeq([
        ins("LI", Reg("v0"), Imm(1)),
        ins("ADD", Reg("v1"), Reg("v0"), Reg("P0")),
        ins("SW", Reg("v1"), Mem("a", mode="direct", address=0)),
    ])
    result, _ = allocate_registers(code, ["R1", "R2"])
    second = list(result.instructions())[1]
    assert second.operands[2].name == "P0"
