"""Unit tests for the address-assignment stage."""

import pytest

from repro.codegen.addressing import AddressAssigner, AddressingError
from repro.codegen.asm import (
    AddrOf, AsmInstr, CodeSeq, Imm, LoopBegin, LoopEnd, Mem,
)
from repro.codegen.compiled import MemoryMap
from repro.ir.dfg import ArrayIndex
from repro.targets.tc25 import TC25


def make_map(**symbols):
    memory_map = MemoryMap()
    address = 0
    for name, size in symbols.items():
        memory_map.addresses[name] = address
        memory_map.sizes[name] = size
        address += size
    memory_map.total = address
    return memory_map


def ins(name, *operands):
    return AsmInstr(opcode=name, operands=tuple(operands))


def assigner(**symbols):
    return AddressAssigner(TC25(), make_map(**symbols))


def mems_of(code):
    out = []
    for item in code:
        if isinstance(item, AsmInstr):
            out.extend(item.memory_operands())
    return out


def test_scalar_resolution_direct():
    code = CodeSeq([ins("LAC", Mem("x")), ins("SACL", Mem("y"))])
    result = assigner(x=1, y=1).run(code)
    modes = [(m.mode, m.address) for m in mems_of(result)]
    assert modes == [("direct", 0), ("direct", 1)]


def test_const_index_array_element_direct():
    code = CodeSeq([ins("LAC", Mem("v", ArrayIndex(0, 2)))])
    result = assigner(v=4).run(code)
    operand = mems_of(result)[0]
    assert operand.mode == "direct"
    assert operand.address == 2


def test_addr_of_resolution():
    code = CodeSeq([ins("ADLK", AddrOf("v", 3))])
    result = assigner(v=4).run(code)
    instr = next(result.instructions())
    assert isinstance(instr.operands[0], Imm)
    assert instr.operands[0].value == 3


def test_stream_gets_register_and_prologue():
    code = CodeSeq([
        LoopBegin(count=4, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(1, 0))),
        LoopEnd(loop_id=0),
    ])
    result = assigner(v=4).run(code)
    instrs = list(result.instructions())
    assert instrs[0].opcode == "LRLK"       # preheader pointer load
    operand = instrs[1].operands[0]
    assert operand.mode == "indirect"
    assert operand.post_modify == 1


def test_reverse_stream_starts_at_high_offset():
    code = CodeSeq([
        LoopBegin(count=4, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(-1, 3))),
        LoopEnd(loop_id=0),
    ])
    result = assigner(v=4).run(code)
    lrlk = next(result.instructions())
    assert lrlk.operands[1].value == 3
    operand = list(result.instructions())[1].operands[0]
    assert operand.post_modify == -1


def test_multi_access_stream_gets_bump():
    code = CodeSeq([
        LoopBegin(count=4, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(1, 0))),
        ins("SACL", Mem("v", ArrayIndex(1, 0))),
        LoopEnd(loop_id=0),
    ])
    result = assigner(v=4).run(code)
    opcodes = [i.opcode for i in result.instructions()]
    assert "MAR" in opcodes
    accesses = [m for m in mems_of(result) if m.mode == "indirect"
                and not m.symbol.startswith("<")]
    assert all(m.post_modify == 0 for m in accesses)


def test_chain_merging_interleaved_pairs():
    code = CodeSeq([
        LoopBegin(count=4, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(2, 0))),
        ins("ADD", Mem("v", ArrayIndex(2, 1))),
        LoopEnd(loop_id=0),
    ])
    result = assigner(v=8).run(code)
    accesses = [m for m in mems_of(result) if m.mode == "indirect"]
    registers = {m.areg for m in accesses}
    assert len(registers) == 1              # one register for the pair
    assert [m.post_modify for m in accesses] == [1, 1]


def test_chain_merge_requires_matching_order():
    # odd element accessed first: the textual order does not match the
    # offset order, so no merge (two registers).
    code = CodeSeq([
        LoopBegin(count=4, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(2, 1))),
        ins("ADD", Mem("v", ArrayIndex(2, 0))),
        LoopEnd(loop_id=0),
    ])
    result = assigner(v=8).run(code)
    accesses = [m for m in mems_of(result) if m.mode == "indirect"
                and not m.symbol.startswith("<")]
    assert len({m.areg for m in accesses}) == 2


def test_out_of_registers_raises():
    items = [LoopBegin(count=2, loop_id=0)]
    for index in range(10):
        items.append(ins("LAC", Mem(f"v{index}", ArrayIndex(1, 0))))
    items.append(LoopEnd(loop_id=0))
    symbols = {f"v{i}": 4 for i in range(10)}
    with pytest.raises(AddressingError):
        assigner(**symbols).run(CodeSeq(items))


def test_stride_exceeding_capability_raises():
    code = CodeSeq([
        LoopBegin(count=2, loop_id=0),
        ins("LAC", Mem("v", ArrayIndex(99, 0))),
        LoopEnd(loop_id=0),
    ])
    with pytest.raises(AddressingError):
        assigner(v=256).run(code)


def test_induction_access_outside_loop_raises():
    code = CodeSeq([ins("LAC", Mem("v", ArrayIndex(1, 0)))])
    with pytest.raises(AddressingError):
        assigner(v=4).run(code)


def test_nested_loops_do_not_share_registers():
    code = CodeSeq([
        LoopBegin(count=2, loop_id=0),
        ins("LAC", Mem("a", ArrayIndex(1, 0))),
        LoopBegin(count=2, loop_id=1),
        ins("ADD", Mem("b", ArrayIndex(1, 0))),
        LoopEnd(loop_id=1),
        LoopEnd(loop_id=0),
    ])
    result = assigner(a=4, b=4).run(code)
    accesses = [m for m in mems_of(result) if m.mode == "indirect"]
    assert len({m.areg for m in accesses}) == 2
