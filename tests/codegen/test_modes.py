"""Unit tests for mode-change minimization."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, LoopBegin, LoopEnd
from repro.codegen.modes import minimize_mode_changes
from repro.targets.tc25 import TC25


def instr(name, pm=None):
    modes = {"pm": pm} if pm is not None else {}
    return AsmInstr(opcode=name, modes=modes)


def run(items, naive=False):
    code = minimize_mode_changes(CodeSeq(items), TC25(), naive=naive)
    return [(item.opcode,
             item.operands[0].value if item.opcode == "SPM" else None)
            for item in code if isinstance(item, AsmInstr)]


def spm_count(result):
    return sum(1 for op, _ in result if op == "SPM")


def test_no_requirements_no_changes():
    result = run([instr("LAC"), instr("SACL")])
    assert spm_count(result) == 0


def test_reset_value_needs_no_change():
    # machine resets with pm=0
    result = run([instr("PAC", pm=0)])
    assert spm_count(result) == 0


def test_single_change_for_uniform_requirements():
    result = run([instr("PAC", pm=15), instr("APAC", pm=15),
                  instr("SPAC", pm=15)])
    assert spm_count(result) == 1
    assert result[0] == ("SPM", 15)


def test_alternating_requirements_change_each_time():
    result = run([instr("PAC", pm=15), instr("PAC", pm=0),
                  instr("PAC", pm=15)])
    assert spm_count(result) == 3   # 15, back to 0, back to 15


def test_loop_with_uniform_requirement_hoists():
    items = [
        LoopBegin(count=8, loop_id=0),
        instr("MAC", pm=15),
        LoopEnd(loop_id=0),
    ]
    result = run(items)
    assert spm_count(result) == 1
    # the single SPM sits before the loop (first instruction overall)
    assert result[0] == ("SPM", 15)


def test_loop_with_conflicting_requirements_changes_inside():
    items = [
        LoopBegin(count=8, loop_id=0),
        instr("PAC", pm=0),
        instr("APAC", pm=15),
        LoopEnd(loop_id=0),
    ]
    result = run(items)
    # both values needed every iteration: 2 SPMs inside the body; the
    # pm=0 one is needed even on iteration 1? entry is already 0, but
    # the back edge arrives with 15 -- correctness requires the change.
    assert spm_count(result) == 2


def test_requirement_after_loop_accounts_for_loop_exit_mode():
    items = [
        LoopBegin(count=4, loop_id=0),
        instr("MAC", pm=15),
        LoopEnd(loop_id=0),
        instr("PAC", pm=15),
    ]
    result = run(items)
    # hoisted SPM before the loop covers the tail instruction too
    assert spm_count(result) == 1


def test_naive_reinstates_at_loop_boundaries():
    items = [
        instr("PAC", pm=15),
        LoopBegin(count=4, loop_id=0),
        instr("MAC", pm=15),
        LoopEnd(loop_id=0),
    ]
    optimized = run(items)
    naive = run(items, naive=True)
    assert spm_count(naive) >= spm_count(optimized)
    # naive forgets the tracked value across the LoopBegin
    assert spm_count(naive) == 2


def test_nested_loops():
    items = [
        LoopBegin(count=2, loop_id=0),
        instr("PAC", pm=0),
        LoopBegin(count=3, loop_id=1),
        instr("MAC", pm=15),
        LoopEnd(loop_id=1),
        LoopEnd(loop_id=0),
    ]
    result = run(items)
    # pm flips between outer body (0) and inner loop (15) each outer
    # iteration: changes must live inside the outer body.
    ops = [entry for entry in result if entry[0] == "SPM"]
    assert len(ops) == 2


def test_simulated_modes_always_satisfied():
    """Replay the mode pass's output and check every requirement holds
    at execution time (straight-line + loops, unrolled by hand)."""
    items = [
        instr("PAC", pm=15),
        LoopBegin(count=3, loop_id=0),
        instr("PAC", pm=0),
        instr("APAC", pm=15),
        LoopEnd(loop_id=0),
        instr("SPAC", pm=15),
    ]
    code = minimize_mode_changes(CodeSeq(items), TC25())

    # unroll: simulate marker semantics directly
    def replay(items_list):
        mode = {"pm": 0}
        index = 0
        stack = []
        flat = list(items_list)
        while index < len(flat):
            item = flat[index]
            if isinstance(item, LoopBegin):
                stack.append((index, item.count))
                index += 1
                continue
            if isinstance(item, LoopEnd):
                start, remaining = stack.pop()
                if remaining > 1:
                    stack.append((start, remaining - 1))
                    index = start + 1
                else:
                    index += 1
                continue
            if item.opcode == "SPM":
                mode["pm"] = item.operands[0].value
            else:
                for name, value in item.modes.items():
                    assert mode[name] == value, \
                        f"{item.opcode} needed {name}={value}"
            index += 1

    replay(code.items)
