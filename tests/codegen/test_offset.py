"""Unit + property tests for offset assignment (SOA/GOA)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.offset import (
    access_graph, assignment_cost, exhaustive_order,
    general_offset_assignment, liao_order, naive_order,
)

SEQUENCES = st.lists(st.sampled_from("abcdef"), min_size=1, max_size=14)


def test_cost_model_basics():
    # layout a,b,c; sequence walks adjacently: only the setup load
    assert assignment_cost(["a", "b", "c"], ["a", "b", "c"]) == 1
    # jumping a->c costs an extra load
    assert assignment_cost(["a", "c"], ["a", "b", "c"]) == 2
    # same variable twice in a row is free
    assert assignment_cost(["a", "a", "b"], ["a", "b"]) == 1
    assert assignment_cost([], ["a"]) == 0


def test_cost_model_rejects_unknown_variables():
    with pytest.raises(ValueError):
        assignment_cost(["a", "x"], ["a"])


def test_access_graph_weights():
    weights = access_graph(["a", "b", "a", "b", "c", "c"])
    assert weights[("a", "b")] == 3
    assert weights[("b", "c")] == 1
    assert ("c", "c") not in weights


def test_naive_order_is_first_use():
    assert naive_order(["b", "a", "b", "c"]) == ["b", "a", "c"]


def test_liao_beats_naive_on_the_classic_example():
    # Liao's running example shape: frequent pairs should be adjacent.
    sequence = ["a", "b", "a", "b", "c", "d", "c", "d", "a", "d"]
    naive_cost = assignment_cost(sequence, naive_order(sequence))
    liao_cost = assignment_cost(sequence, liao_order(sequence))
    assert liao_cost <= naive_cost


def test_liao_order_contains_every_variable_once():
    sequence = ["a", "b", "c", "a", "c", "b", "d"]
    order = liao_order(sequence)
    assert sorted(order) == ["a", "b", "c", "d"]


@settings(max_examples=120, deadline=None)
@given(SEQUENCES)
def test_liao_never_worse_than_naive(sequence):
    naive_cost = assignment_cost(sequence, naive_order(sequence))
    liao_cost = assignment_cost(sequence, liao_order(sequence))
    assert liao_cost <= naive_cost


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=10))
def test_exhaustive_is_optimal_and_liao_close(sequence):
    optimal = assignment_cost(sequence, exhaustive_order(sequence))
    liao_cost = assignment_cost(sequence, liao_order(sequence))
    assert optimal <= liao_cost
    # Bartley/Liao greedy is known-good on small instances; allow a
    # bounded gap rather than asserting optimality.
    assert liao_cost <= optimal + 2


@settings(max_examples=60, deadline=None)
@given(SEQUENCES)
def test_liao_order_is_a_permutation(sequence):
    order = liao_order(sequence)
    assert sorted(order) == sorted(set(sequence))


def test_exhaustive_guardrail():
    with pytest.raises(ValueError):
        exhaustive_order(list("abcdefghij"))


def test_goa_partitions_and_layout():
    sequence = ["a", "b", "a", "b", "x", "y", "x", "y"]
    result = general_offset_assignment(sequence, registers=2)
    assert sorted(result.layout) == ["a", "b", "x", "y"]
    # with two registers the interleaved pairs separate cleanly
    single = general_offset_assignment(sequence, registers=1)
    assert result.cost <= single.cost


@settings(max_examples=40, deadline=None)
@given(SEQUENCES, st.integers(min_value=1, max_value=3))
def test_goa_cost_monotone_in_registers(sequence, registers):
    fewer = general_offset_assignment(sequence, registers).cost
    more = general_offset_assignment(sequence, registers + 1).cost
    assert more <= fewer


def test_goa_validates_register_count():
    with pytest.raises(ValueError):
        general_offset_assignment(["a"], registers=0)
