"""Unit tests for the marker-structured code view."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, Label, LoopBegin, LoopEnd
from repro.codegen.structure import LoopNode, Run, flatten, iter_loops, parse


def ins(name):
    return AsmInstr(opcode=name)


def test_parse_flat_run():
    code = CodeSeq([ins("A"), ins("B")])
    nodes = parse(code)
    assert len(nodes) == 1
    assert isinstance(nodes[0], Run)
    assert [i.opcode for i in nodes[0].items] == ["A", "B"]


def test_parse_nested_loops():
    code = CodeSeq([
        ins("A"),
        LoopBegin(count=4, loop_id=0),
        ins("B"),
        LoopBegin(count=2, loop_id=1),
        ins("C"),
        LoopEnd(loop_id=1),
        ins("D"),
        LoopEnd(loop_id=0),
        ins("E"),
    ])
    nodes = parse(code)
    assert [type(n).__name__ for n in nodes] == ["Run", "LoopNode",
                                                 "Run"]
    outer = nodes[1]
    assert outer.count == 4
    assert not outer.is_innermost()
    inner = [n for n in outer.body if isinstance(n, LoopNode)][0]
    assert inner.is_innermost()
    assert [i.opcode for i in outer.direct_items()] == ["B", "D"]


def test_roundtrip_flatten():
    code = CodeSeq([
        ins("A"), LoopBegin(count=3, loop_id=0), ins("B"),
        LoopEnd(loop_id=0), Label("L"), ins("C"),
    ])
    assert flatten(parse(code)).items == code.items


def test_iter_loops_innermost_first():
    code = CodeSeq([
        LoopBegin(count=2, loop_id=0),
        LoopBegin(count=2, loop_id=1),
        ins("X"),
        LoopEnd(loop_id=1),
        LoopEnd(loop_id=0),
    ])
    loops = list(iter_loops(parse(code)))
    assert [l.loop_id for l in loops] == [1, 0]


def test_unbalanced_markers_rejected():
    with pytest.raises(ValueError):
        parse(CodeSeq([LoopEnd(loop_id=0)]))
    with pytest.raises(ValueError):
        parse(CodeSeq([LoopBegin(count=2, loop_id=0)]))
    with pytest.raises(ValueError):
        parse(CodeSeq([LoopBegin(count=2, loop_id=0),
                       LoopEnd(loop_id=9)]))


def test_labels_break_runs():
    code = CodeSeq([ins("A"), Label("L"), ins("B")])
    nodes = parse(code)
    assert len(nodes) == 1        # labels live inside runs
    assert isinstance(nodes[0], Run)
    assert len(nodes[0].items) == 3
