"""Unit tests for the assembly object layer."""

from repro.codegen.asm import (
    AddrOf, AsmInstr, CodeSeq, Imm, Label, LabelRef, LoopBegin, LoopEnd,
    Mem, Reg,
)
from repro.ir.dfg import ArrayIndex


def test_mem_renderings():
    assert str(Mem("x")) == "x"
    assert str(Mem("v", ArrayIndex(1, 2))) == "v[i+2]"
    assert str(Mem("x", mode="direct", address=7)) == "@7"
    assert str(Mem("x", mode="indirect", areg="AR1",
                   post_modify=1)) == "*AR1+"
    assert str(Mem("x", mode="indirect", areg="AR1",
                   post_modify=-1)) == "*AR1-"
    assert str(Mem("x", mode="indirect", areg="AR1",
                   post_modify=0)) == "*AR1"


def test_operand_renderings():
    assert str(Imm(-3)) == "#-3"
    assert str(Reg("AR2")) == "AR2"
    assert str(LabelRef("L1")) == "L1"
    assert str(AddrOf("v", 3)) == "&v+3"
    assert str(AddrOf("v")) == "&v"


def test_instr_render_with_parallel_and_comment():
    move = AsmInstr("MOVE", (Reg("x0"), Mem("a", mode="indirect",
                                            areg="r1", post_modify=1)))
    host = AsmInstr("MAC", (Reg("x0"), Reg("y0"), Reg("a")),
                    parallel=(move,), comment="pipelined")
    text = host.render()
    assert "MAC x0, y0, a" in text
    assert "||" in text
    assert "pipelined" in text


def test_memory_operands_include_parallel():
    move = AsmInstr("MOVE", (Reg("x0"), Mem("a")))
    host = AsmInstr("MAC", (Reg("x0"),), parallel=(move,))
    symbols = [m.symbol for m in host.memory_operands()]
    assert symbols == ["a"]


def test_with_operands_replaces():
    instr = AsmInstr("LAC", (Mem("x"),), words=2)
    replaced = instr.with_operands(Mem("y"))
    assert replaced.operands[0].symbol == "y"
    assert replaced.words == 2


def test_codeseq_accounting_and_render():
    code = CodeSeq([
        Label("start"),
        AsmInstr("LAC", (Mem("x", mode="direct", address=0),)),
        LoopBegin(count=4, loop_id=0),
        AsmInstr("ADD", (Mem("y", mode="direct", address=1),), words=2),
        LoopEnd(loop_id=0),
    ])
    assert code.words() == 3
    assert len(code) == 5
    text = code.render()
    assert "start:" in text
    assert ".loop 0 x4" in text
    # loop body is indented
    body_line = [line for line in text.splitlines() if "ADD" in line][0]
    assert body_line.startswith("    ")


def test_codeseq_copy_is_shallow_list():
    code = CodeSeq([AsmInstr("NOP")])
    clone = code.copy()
    clone.append(AsmInstr("ZAC"))
    assert len(code) == 1 and len(clone) == 2
