"""Static timing analysis must match simulation exactly (Sec. 3.2 r4)."""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.codegen.timing import TimingError, predict_cycles
from repro.dspstone import all_kernels, hand_reference
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

KERNELS = [spec.name for spec in all_kernels()]


def simulated_cycles(spec, compiled) -> int:
    _outputs, state = run_compiled(compiled, spec.inputs(seed=0))
    return state.cycles


@pytest.mark.parametrize("name", KERNELS)
def test_prediction_matches_simulation_record_tc25(name):
    from repro.dspstone import kernel
    spec = kernel(name)
    compiled = RecordCompiler(TC25()).compile(spec.program)
    report = predict_cycles(compiled.code)
    assert report.total_cycles == simulated_cycles(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_prediction_matches_simulation_baseline(name):
    from repro.dspstone import kernel
    spec = kernel(name)
    compiled = BaselineCompiler(TC25()).compile(spec.program)
    report = predict_cycles(compiled.code)
    assert report.total_cycles == simulated_cycles(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_prediction_matches_simulation_m56(name):
    from repro.dspstone import kernel
    spec = kernel(name)
    compiled = RecordCompiler(M56()).compile(spec.program)
    report = predict_cycles(compiled.code)
    assert report.total_cycles == simulated_cycles(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_prediction_matches_simulation_risc(name):
    from repro.dspstone import kernel
    spec = kernel(name)
    compiled = RecordCompiler(Risc16()).compile(spec.program)
    report = predict_cycles(compiled.code)
    assert report.total_cycles == simulated_cycles(spec, compiled)


def test_prediction_matches_hand_references():
    from repro.dspstone import kernel
    for name in KERNELS:
        spec = kernel(name)
        compiled = hand_reference(name)
        report = predict_cycles(compiled.code)
        assert report.total_cycles == simulated_cycles(spec, compiled), \
            name


def test_report_structure():
    from repro.dspstone import kernel
    spec = kernel("fir")
    compiled = RecordCompiler(TC25()).compile(spec.program)
    report = predict_cycles(compiled.code)
    assert report.loop_count >= 1
    text = report.describe()
    assert "predicted execution time" in text
    assert "loop" in text


def test_unstructured_branch_rejected():
    from repro.codegen.asm import AsmInstr, CodeSeq, LabelRef, Reg
    code = CodeSeq([
        AsmInstr(opcode="BANZ",
                 operands=(LabelRef("nowhere"), Reg("AR7"))),
    ])
    with pytest.raises(TimingError):
        predict_cycles(code)
