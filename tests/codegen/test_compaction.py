"""Unit tests for parallel-move compaction (greedy + optimal)."""

import pytest

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, Label, Mem, Reg
from repro.codegen.compaction import (
    compact_code, greedy_compaction, optimal_compaction, tokens_conflict,
)
from repro.targets.m56 import M56, M56SlotModel


def move(dst, src):
    return AsmInstr("MOVE", (dst, src))


def xmem(addr):
    return Mem(symbol=f"x{addr}", mode="indirect", areg="r1",
               post_modify=0, bank="x")


def ymem(addr):
    return Mem(symbol=f"y{addr}", mode="indirect", areg="r5",
               post_modify=0, bank="y")


def mac():
    return AsmInstr("MAC", (Reg("x0"), Reg("y0"), Reg("a")))


@pytest.fixture()
def model():
    return M56SlotModel()


def test_tokens_conflict_bank_wildcards():
    assert tokens_conflict({"m:x"}, {"m:x:5"})
    assert tokens_conflict({"m:x:5"}, {"m:x"})
    assert not tokens_conflict({"m:x:5"}, {"m:y"})
    assert not tokens_conflict({"m:x:5"}, {"m:x:6"})
    assert tokens_conflict({"a"}, {"a", "b"})


def test_slot_classification(model):
    assert model.slot_of(move(Reg("x0"), xmem(0))) == "xmove"
    assert model.slot_of(move(Reg("y0"), ymem(0))) == "ymove"
    assert model.slot_of(mac()) is None
    # absolute moves don't pack
    absolute = move(Reg("x0"), Mem("v", mode="direct", address=3,
                                   bank="x"))
    assert model.slot_of(absolute) is None


def test_pipelined_idiom_packs(model):
    # mv x0,A; mv y0,B; MAC; mv x0,C; mv y0,D; MAC
    # -> the second pair packs into the first MAC.
    instrs = [
        move(Reg("x0"), xmem(0)), move(Reg("y0"), ymem(0)), mac(),
        move(Reg("x0"), xmem(1)), move(Reg("y0"), ymem(1)), mac(),
    ]
    result = greedy_compaction(instrs, model)
    assert len(result) == 4
    packed = result[2]
    assert packed.opcode == "MAC"
    assert len(packed.parallel) == 2


def test_loads_do_not_pack_into_consuming_op(model):
    # mv x0,A; MAC uses x0 -- the move may NOT ride on that MAC
    # (parallel moves deliver after the ALU reads).
    instrs = [mac(), move(Reg("x0"), xmem(0))]
    # move comes after: packing is fine (MAC read old x0)
    assert len(greedy_compaction(instrs, model)) == 1
    instrs = [move(Reg("x0"), xmem(0)), mac()]
    # move comes first and MAC needs its result: cannot pack
    assert len(greedy_compaction(instrs, model)) == 2


def test_one_slot_per_bus(model):
    instrs = [mac(), move(Reg("x0"), xmem(0)), move(Reg("x1"), xmem(1))]
    result = greedy_compaction(instrs, model)
    # both moves are X-bus: only one packs
    assert len(result) == 2


def test_same_pointer_moves_keep_order(model):
    # two moves through the same address register with post-modify have
    # a register dependence; the second cannot jump the first.
    first = move(Reg("x0"), Mem("v", mode="indirect", areg="r1",
                                post_modify=1, bank="x"))
    second = move(Reg("x1"), Mem("v", mode="indirect", areg="r1",
                                 post_modify=1, bank="x"))
    instrs = [first, mac(), second]
    result = greedy_compaction(instrs, model)
    # second may pack into the MAC (it follows first), but never above
    flattened = []
    for instr in result:
        flattened.append(instr)
        flattened.extend(instr.parallel)
    assert flattened.index(first) < flattened.index(second)


def test_write_write_conflict_blocks_packing(model):
    instrs = [mac(), move(Reg("x0"), xmem(0)), move(Reg("x0"), xmem(1))]
    result = greedy_compaction(instrs, model)
    # second move defines x0 too -> WAW with the packed first; and both
    # are X-bus anyway.  It must stay behind.
    assert len(result) == 2


def test_optimal_never_worse_than_greedy(model):
    instrs = [
        move(Reg("x0"), xmem(0)), move(Reg("y0"), ymem(0)), mac(),
        move(Reg("y0"), ymem(1)), move(Reg("x0"), xmem(1)), mac(),
        move(Reg("x1"), xmem(2)),
    ]
    greedy = greedy_compaction(instrs, model)
    optimal = optimal_compaction(instrs, model)
    assert len(optimal) <= len(greedy)


def test_optimal_falls_back_beyond_block_limit(model):
    instrs = [mac() for _ in range(20)]
    result = optimal_compaction(instrs, model, max_block=4)
    assert len(result) == 20


def test_compact_code_respects_boundaries(model):
    code = CodeSeq([
        mac(),
        Label("L"),
        move(Reg("x0"), xmem(0)),
    ])
    result = compact_code(code, model, "greedy")
    # the move must not cross the label into the MAC
    instrs = [item for item in result
              if isinstance(item, AsmInstr)]
    assert all(not instr.parallel for instr in instrs)


def test_compact_code_none_strategy_is_identity(model):
    code = CodeSeq([mac(), move(Reg("x0"), xmem(0))])
    result = compact_code(code, model, "none")
    assert len(list(result.instructions())) == 2
