"""Unit tests for tree grammars and costs."""

import pytest

from repro.codegen.asm import Mem
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.ir.trees import Tree


def test_cost_addition_and_keys():
    total = Cost(1, 2) + Cost(3, 4)
    assert (total.words, total.cycles) == (4, 6)
    assert Cost(2, 9).key("size") < Cost(3, 1).key("size")
    assert Cost(9, 2).key("speed") < Cost(1, 3).key("speed")
    with pytest.raises(ValueError):
        Cost().key("area")


def test_term_validation_and_matching():
    with pytest.raises(ValueError):
        Term("register")
    const = Term("const", lambda t: t.value > 0)
    assert const.matches(Tree.const(5))
    assert not const.matches(Tree.const(-5))
    assert not const.matches(Tree.ref("a"))
    ref = Term("ref")
    assert ref.matches(Tree.ref("a"))
    assert not ref.matches(Tree.const(1))


def test_pat_validates_operator_and_arity():
    with pytest.raises(ValueError):
        Pat("frob", (Nt("a"),))
    with pytest.raises(ValueError):
        Pat("add", (Nt("a"),))


def test_grammar_indexes_rules():
    rules = [
        Rule("mem", Term("ref"), Cost(0, 0), emit=None, name="ref"),
        Rule("acc", Nt("mem"), Cost(1, 1), emit=None, name="load"),
        Rule("acc", Pat("add", (Nt("acc"), Nt("mem"))), Cost(1, 1),
             emit=None, name="add"),
    ]
    grammar = TreeGrammar("g", rules, {"acc": "acc", "mem": None})
    assert [r.name for r in grammar.rules_for_op("add")] == ["add"]
    assert [r.name for r in grammar.leaf_rules()] == ["ref"]
    assert [r.name for r in grammar.chain_rules_from("mem")] == ["load"]
    assert grammar.resource_of("acc") == "acc"
    assert grammar.resource_of("mem") is None
    assert set(grammar.nonterminals) == {"mem", "acc"}


def test_grammar_add_rule_reindexes():
    grammar = TreeGrammar("g", [
        Rule("mem", Term("ref"), Cost(0, 0), emit=None, name="ref"),
    ])
    grammar.add_rule(Rule("acc", Nt("mem"), Cost(1, 1), emit=None,
                          name="load"))
    assert grammar.chain_rules_from("mem")


def test_emit_context_scratch_allocation():
    ctx = EmitContext()
    first = ctx.scratch()
    second = ctx.scratch()
    assert isinstance(first, Mem)
    assert first.symbol != second.symbol
    assert ctx.scratch_symbols == [first.symbol, second.symbol]


def test_rule_str_mentions_cost_and_name():
    rule = Rule("acc", Nt("mem"), Cost(2, 3), emit=None, name="LAC")
    text = str(rule)
    assert "LAC" in text and "2w" in text and "3c" in text
