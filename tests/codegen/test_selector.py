"""Unit tests for the instruction selector (variants, cover-or-cut)."""

import pytest

from repro.codegen.grammar import EmitContext
from repro.codegen.selector import SelectionError, Selector, wrap_store
from repro.ir.dfg import ArrayIndex
from repro.ir.trees import Tree, TreeAssignment
from repro.targets.tc25 import TC25


@pytest.fixture()
def selector():
    return Selector(TC25().grammar())


def emit(selector, symbol, tree, index=None):
    ctx = EmitContext()
    cost = selector.select_assignment(
        TreeAssignment(symbol, index, tree), ctx)
    return ctx, cost


def opcodes(ctx):
    return [i.opcode for i in ctx.code.instructions()]


def test_simple_store(selector):
    ctx, cost = emit(selector, "y", Tree.ref("a"))
    assert opcodes(ctx) == ["LAC", "SACL"]
    assert cost.words == 2


def test_mac_shape(selector):
    tree = Tree.compute("add", Tree.ref("c"),
                        Tree.compute("mul", Tree.ref("a"),
                                     Tree.ref("b")))
    ctx, cost = emit(selector, "y", tree)
    assert opcodes(ctx) == ["LAC", "LT", "MPY", "APAC", "SACL"]


def test_algebraic_variant_wins_for_mul_by_pow2(selector):
    # a * 8 strength-reduces via the shl variant, and the covering then
    # finds the C25 load-with-shift (LACS a,#3): two words total instead
    # of a multiply through T/P.
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(8))
    ctx, cost = emit(selector, "y", tree)
    assert opcodes(ctx) == ["LACS", "SACL"]
    assert cost.words == 2


def test_commute_rescues_constant_multiplicand():
    selector = Selector(TC25().grammar())
    tree = Tree.compute("mul", Tree.const(3), Tree.ref("a"))
    ctx, _cost = emit(selector, "y", tree)
    # mul(#3, a) has no direct cover (T loads from memory); the commuted
    # variant LT a; MPYK 3 does.
    assert "MPYK" in opcodes(ctx)


def test_algebraic_disabled_changes_result():
    strict = Selector(TC25().grammar(), algebraic=False)
    tree = Tree.compute("mul", Tree.ref("a"), Tree.const(8))
    ctx, cost = emit(strict, "y", tree)
    assert "SFL" not in opcodes(ctx)     # no strength reduction variant


def test_cut_for_uncoverable_operand(selector):
    # (a+b)*c: the multiplicand must come from memory, so the selector
    # cuts a+b into a scratch cell.
    tree = Tree.compute("mul",
                        Tree.compute("add", Tree.ref("a"),
                                     Tree.ref("b")),
                        Tree.ref("c"))
    ctx, cost = emit(selector, "y", tree)
    assert selector.stats.cuts == 1
    ops = opcodes(ctx)
    assert ops.count("SACL") == 2       # scratch + final store
    assert ctx.scratch_symbols           # a scratch cell was allocated


def test_dmov_selected_for_adjacent_array_copy(selector):
    tree = Tree.ref("x", ArrayIndex(coeff=-1, offset=2))
    ctx, cost = emit(selector, "x", tree,
                     index=ArrayIndex(coeff=-1, offset=3))
    assert opcodes(ctx) == ["DMOV"]
    assert cost.words == 1


def test_non_adjacent_array_copy_uses_acc(selector):
    tree = Tree.ref("x", ArrayIndex(coeff=0, offset=0))
    ctx, _ = emit(selector, "x", tree,
                  index=ArrayIndex(coeff=0, offset=2))
    assert opcodes(ctx) == ["LAC", "SACL"]


def test_unknown_operator_raises_selection_error():
    selector = Selector(TC25().grammar())
    # min() has no TC25 rule and its operands don't help
    tree = Tree.compute("min", Tree.ref("a"), Tree.ref("b"))
    with pytest.raises(SelectionError):
        emit(selector, "y", tree)


def test_stats_accumulate(selector):
    emit(selector, "y", Tree.ref("a"))
    emit(selector, "z", Tree.ref("b"))
    assert selector.stats.assignments == 2
    assert selector.stats.total_cost.words == 4


def test_wrap_store_shape():
    wrapped = wrap_store("y", None, Tree.const(1))
    assert wrapped.operator.name == "store"
    assert wrapped.children[0].symbol == "y"
