"""Unit + property tests for the BURS matcher.

Uses a small synthetic accumulator grammar so the DP behaviour is fully
predictable, plus properties checked against brute-force enumeration of
covers on the TC25 grammar.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.asm import AsmInstr
from repro.codegen.burg import BurgMatcher, CoverError
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.ir.trees import Tree


def trace_rule(nonterm, pattern, cost, name, clobbers=frozenset()):
    def emit(ctx, args):
        if cost.words:
            ctx.emit(AsmInstr(opcode=name,
                              words=cost.words, cycles=cost.cycles))
        return nonterm
    return Rule(nonterm, pattern, cost, emit=emit, name=name,
                clobbers=clobbers)


@pytest.fixture()
def grammar():
    rules = [
        trace_rule("mem", Term("ref"), Cost(0, 0), "ref"),
        trace_rule("acc", Nt("mem"), Cost(1, 1), "LOAD", {"acc"}),
        trace_rule("acc", Term("const"), Cost(2, 2), "LOADI", {"acc"}),
        trace_rule("acc", Term("const", lambda t: t.value == 0, "#0"),
                   Cost(1, 1), "ZERO", {"acc"}),
        trace_rule("acc", Pat("add", (Nt("acc"), Nt("mem"))),
                   Cost(1, 1), "ADDM", {"acc"}),
        trace_rule("acc", Pat("add", (Nt("acc"),
                                      Pat("mul", (Nt("mem"),
                                                  Nt("mem"))))),
                   Cost(2, 2), "MACM", {"acc", "t", "p"}),
        trace_rule("acc", Pat("mul", (Nt("mem"), Nt("mem"))),
                   Cost(3, 3), "MULM", {"acc", "t", "p"}),
        trace_rule("stmt", Pat("store", (Term("ref"), Nt("acc"))),
                   Cost(1, 1), "STORE"),
    ]
    return TreeGrammar("toy", rules,
                       {"acc": "acc", "mem": None, "stmt": None})


def store(tree):
    return Tree.compute("store", Tree.ref("y"), tree)


def test_leaf_costs(grammar):
    matcher = BurgMatcher(grammar)
    assert matcher.cover_cost(Tree.ref("a"), "mem") == Cost(0, 0)
    assert matcher.cover_cost(Tree.ref("a"), "acc") == Cost(1, 1)
    # guarded zero rule beats the generic immediate
    assert matcher.cover_cost(Tree.const(0), "acc") == Cost(1, 1)
    assert matcher.cover_cost(Tree.const(7), "acc") == Cost(2, 2)


def test_chain_rules_close(grammar):
    matcher = BurgMatcher(grammar)
    tree = Tree.compute("add", Tree.ref("a"), Tree.ref("b"))
    # LOAD a (1) + ADDM b (1)
    assert matcher.cover_cost(tree, "acc") == Cost(2, 2)


def test_composite_pattern_beats_composition(grammar):
    matcher = BurgMatcher(grammar)
    tree = Tree.compute(
        "add", Tree.ref("x"),
        Tree.compute("mul", Tree.ref("a"), Tree.ref("b")))
    # MACM: 1 (load x) + 2 = 3 vs MULM+...: 3+... DP must pick MACM.
    assert matcher.cover_cost(tree, "acc") == Cost(3, 3)
    rules = [r.name for r in matcher.cover_rules(tree, "acc")]
    assert "MACM" in rules
    assert "MULM" not in rules


def test_uncoverable_returns_none(grammar):
    matcher = BurgMatcher(grammar)
    tree = Tree.compute("sub", Tree.ref("a"), Tree.ref("b"))
    assert matcher.cover_cost(tree, "acc") is None


def test_reduce_emits_in_order(grammar):
    matcher = BurgMatcher(grammar)
    ctx = EmitContext()
    tree = store(Tree.compute("add", Tree.ref("a"), Tree.ref("b")))
    matcher.reduce(tree, "stmt", ctx)
    opcodes = [i.opcode for i in ctx.code.instructions()]
    assert opcodes == ["LOAD", "ADDM", "STORE"]


def test_reduce_unknown_goal_raises(grammar):
    matcher = BurgMatcher(grammar)
    with pytest.raises(CoverError):
        matcher.reduce(Tree.ref("a"), "stmt", EmitContext())


def test_cover_cost_equals_sum_of_reduced_rule_costs(grammar):
    matcher = BurgMatcher(grammar)
    tree = store(Tree.compute(
        "add",
        Tree.compute("add", Tree.const(0), Tree.ref("m")),
        Tree.compute("mul", Tree.ref("a"), Tree.ref("b"))))
    cost = matcher.cover_cost(tree, "stmt")
    rules = matcher.cover_rules(tree, "stmt")
    total = Cost()
    for rule in rules:
        total = total + rule.cost
    assert total == cost


# ----------------------------------------------------------------------
# Properties against the TC25 grammar
# ----------------------------------------------------------------------

def tc25_matcher():
    from repro.targets.tc25 import TC25
    return BurgMatcher(TC25().grammar())


LEAVES = st.one_of(
    st.sampled_from(["a", "b", "c"]).map(Tree.ref),
    st.integers(min_value=0, max_value=255).map(Tree.const),
)


def trees():
    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["add", "sub", "mul", "and",
                                       "or", "xor"]),
                      children, children)
            .map(lambda t: Tree.compute(t[0], t[1], t[2])),
            st.tuples(st.sampled_from(["neg", "abs"]), children)
            .map(lambda t: Tree.compute(t[0], t[1])),
        )
    return st.recursive(LEAVES, extend, max_leaves=5)


@settings(max_examples=60, deadline=None)
@given(trees())
def test_dp_cost_is_a_lower_bound_on_any_emission(tree):
    """Reducing the optimal cover never emits more words than the DP
    reported (the DP is exact, not heuristic)."""
    matcher = tc25_matcher()
    wrapped = Tree.compute("store", Tree.ref("y"), tree)
    cost = matcher.cover_cost(wrapped, "stmt")
    if cost is None:
        return
    ctx = EmitContext()
    try:
        matcher.reduce(wrapped, "stmt", ctx)
    except CoverError:
        return      # evaluation-order conflict: selector's job to cut
    emitted = sum(i.words for i in ctx.code.instructions())
    assert emitted == cost.words
