"""Mode minimization with several independent machine modes.

The TC25 exercises only ``pm``; this synthetic target has two modes
(``pm`` and ``ovm`` -- the paper's own example pair: product shift and
saturating-vs-wrap-around arithmetic) to pin the pass's behaviour when
requirements interleave.
"""

from typing import Dict

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, LoopBegin, LoopEnd
from repro.codegen.modes import minimize_mode_changes
from repro.targets.model import TargetCapabilities, TargetModel


class TwoModeTarget(TargetModel):
    """Minimal target exposing pm and ovm mode registers."""

    name = "twomode"
    capabilities = TargetCapabilities(modes={"pm": (0, 15),
                                             "ovm": (0, 1)})

    def mode_reset_values(self) -> Dict[str, int]:
        """Both modes reset to 0."""
        return {"pm": 0, "ovm": 0}

    def mode_change_instruction(self, mode: str, value: int) -> AsmInstr:
        """SPM / SOVM-style setters."""
        opcode = {"pm": "SPM", "ovm": "SOVM"}[mode]
        return AsmInstr(opcode=opcode, operands=(Imm(value),))


def instr(name, **modes):
    return AsmInstr(opcode=name, modes=modes)


def changes(code):
    return [(item.opcode, item.operands[0].value)
            for item in code if isinstance(item, AsmInstr)
            and item.opcode in ("SPM", "SOVM")]


def test_independent_modes_change_independently():
    code = minimize_mode_changes(CodeSeq([
        instr("A", pm=15),
        instr("B", ovm=1),
        instr("C", pm=15, ovm=1),
    ]), TwoModeTarget())
    assert changes(code) == [("SPM", 15), ("SOVM", 1)]


def test_interleaved_requirements_do_not_thrash_the_other_mode():
    code = minimize_mode_changes(CodeSeq([
        instr("A", pm=15),
        instr("B", ovm=1),
        instr("C", pm=0),
        instr("D", ovm=1),      # still satisfied: no extra SOVM
        instr("E", pm=15),
    ]), TwoModeTarget())
    result = changes(code)
    assert result.count(("SOVM", 1)) == 1
    assert [entry for entry in result if entry[0] == "SPM"] == \
        [("SPM", 15), ("SPM", 0), ("SPM", 15)]


def test_loop_hoists_each_uniform_mode_once():
    code = minimize_mode_changes(CodeSeq([
        LoopBegin(count=4, loop_id=0),
        instr("A", pm=15, ovm=1),
        instr("B", pm=15),
        LoopEnd(loop_id=0),
    ]), TwoModeTarget())
    result = changes(code)
    assert sorted(result) == [("SOVM", 1), ("SPM", 15)]
    # and both sit before the loop marker
    items = list(code.items)
    begin_at = next(i for i, item in enumerate(items)
                    if isinstance(item, LoopBegin))
    assert all(not (isinstance(item, AsmInstr)
                    and item.opcode in ("SPM", "SOVM"))
               for item in items[begin_at:])


def test_conflicting_mode_inside_loop_leaves_other_hoisted():
    code = minimize_mode_changes(CodeSeq([
        LoopBegin(count=4, loop_id=0),
        instr("A", pm=0, ovm=1),
        instr("B", pm=15),
        LoopEnd(loop_id=0),
    ]), TwoModeTarget())
    result = changes(code)
    # ovm uniform -> hoisted once; pm conflicts -> changed inside, twice
    assert result.count(("SOVM", 1)) == 1
    assert len([entry for entry in result if entry[0] == "SPM"]) == 2
