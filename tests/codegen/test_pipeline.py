"""Unit tests for the RECORD pipeline driver."""

import pytest

from repro.codegen.pipeline import (
    RecordCompiler, RecordOptions, finalize_loops, read_only_input_arrays,
)
from repro.dfl import compile_dfl
from repro.sim.harness import run_compiled
from repro.targets.tc25 import TC25

FIR_SRC = """
program fir8;
const N = 8;
input  x[N], h[N];
output y;
var    acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + h[i] * x[i];
  end;
  y := acc;
end.
"""


@pytest.fixture()
def fir8():
    return compile_dfl(FIR_SRC)


def opcodes(compiled):
    return [i.opcode for i in compiled.code.instructions()]


def test_read_only_input_arrays(fir8):
    read_only = read_only_input_arrays(fir8)
    assert set(read_only) == {"x", "h"}
    program = compile_dfl("""
program p;
input a[4]; output y;
begin
  a[0] := 1;
  y := a[1];
end.
""")
    assert read_only_input_arrays(program) == {}


def test_full_pipeline_uses_repeat_mac_idiom(fir8):
    compiled = RecordCompiler(TC25()).compile(fir8)
    ops = opcodes(compiled)
    assert "RPTK" in ops and "MAC" in ops
    assert compiled.pmem_tables
    table = compiled.pmem_tables[0]
    assert table.stride == 1
    assert table.count == 8


def test_idiom_disabled_by_option(fir8):
    options = RecordOptions(repeat_idioms=False)
    compiled = RecordCompiler(TC25(), options).compile(fir8)
    ops = opcodes(compiled)
    assert "MAC" not in ops
    assert "BANZ" in ops
    assert not compiled.pmem_tables


def test_promotion_disabled_costs_words(fir8):
    base = RecordCompiler(TC25()).compile(fir8).words()
    no_promo = RecordCompiler(
        TC25(), RecordOptions(promote_accumulators=False)).compile(fir8)
    assert no_promo.words() > base


def test_every_option_combination_stays_correct(fir8):
    spec_inputs = {"x": list(range(1, 9)), "h": [3] * 8}
    from repro.ir.fixedpoint import FixedPointContext
    reference = fir8.initial_environment()
    reference.update({"x": list(spec_inputs["x"]),
                      "h": list(spec_inputs["h"])})
    fir8.run(reference, FixedPointContext(16))
    for algebraic in (False, True):
        for promote in (False, True):
            for idioms in (False, True):
                for minimize in (False, True):
                    options = RecordOptions(
                        algebraic=algebraic,
                        promote_accumulators=promote,
                        repeat_idioms=idioms,
                        minimize_modes=minimize)
                    compiled = RecordCompiler(TC25(),
                                              options).compile(fir8)
                    outputs, _ = run_compiled(compiled, spec_inputs)
                    assert outputs["y"] == reference["y"], options


def test_stats_are_recorded(fir8):
    compiled = RecordCompiler(TC25()).compile(fir8)
    assert compiled.stats["words"] == compiled.words()
    assert compiled.stats["selection"].assignments > 0


def test_listing_contains_header(fir8):
    compiled = RecordCompiler(TC25()).compile(fir8)
    listing = compiled.listing()
    assert "fir8" in listing and "record" in listing and "tc25" in listing


def test_memory_map_covers_all_symbols(fir8):
    compiled = RecordCompiler(TC25()).compile(fir8)
    for name in fir8.symbols:
        assert compiled.memory_map.contains(name)


def test_finalize_rejects_leftover_markers_cleanly(fir8):
    # finalize_loops is driven by the pipeline; calling it twice on the
    # finalized output must be a no-op (no markers remain).
    compiled = RecordCompiler(TC25()).compile(fir8)
    again = finalize_loops(compiled.code, TC25())
    assert again.items == compiled.code.items
