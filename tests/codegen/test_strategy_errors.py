"""Unknown strategy names fail as CompileError, naming the choices.

The tuner (and anyone hand-editing a tuning database or serve request)
can ask for a strategy that does not exist; the dispatch sites must
answer with a diagnosable :class:`CompileError` rather than a raw
``KeyError`` from a dict lookup.
"""

from __future__ import annotations

import pytest

from repro.codegen.compaction import compact_code
from repro.codegen.pipeline import CompileError, RecordCompiler, \
    RecordOptions
from repro.dspstone import kernel


def test_unknown_compaction_strategy():
    # The strategy is vetted before the slot model is ever consulted.
    with pytest.raises(CompileError, match="sideways.*greedy"):
        compact_code([], None, strategy="sideways")


@pytest.mark.parametrize("knob,value,expect", [
    ("compaction", "sideways", "compaction strategy"),
    ("offset_assignment", "psychic", "offset_assignment strategy"),
    ("bank_assignment", "coinflip", "bank_assignment strategy"),
])
def test_unknown_strategy_through_the_pipeline(m56, knob, value, expect):
    options = RecordOptions(**{knob: value})
    with pytest.raises(CompileError, match=expect):
        RecordCompiler(m56, options).compile(
            kernel("real_update").program)


def test_known_strategies_still_compile(m56):
    options = RecordOptions(offset_assignment="naive",
                            bank_assignment="single",
                            compaction="none")
    compiled = RecordCompiler(m56, options).compile(
        kernel("real_update").program)
    assert compiled.words() > 0
