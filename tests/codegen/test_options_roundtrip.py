"""RecordOptions serialization: every field survives the round trip.

The serve layer, the compile farm, the artifact cache and the tuner
all key on the same canonical ``to_dict()`` form (see
``repro.cache.options_payload``); a field that silently fell out of
the round trip would alias distinct configurations to one cache entry.
"""

from __future__ import annotations

import json
from dataclasses import fields

import pytest

from repro.cache import options_payload
from repro.codegen.pipeline import RecordOptions

#: A deliberately non-default value for every field.
NON_DEFAULT = {
    "metric": "speed",
    "algebraic": False,
    "variant_limit": 7,
    "promote_accumulators": False,
    "repeat_idioms": False,
    "fuse_shift_idioms": True,
    "peephole": False,
    "minimize_modes": False,
    "scalar_order": ("b", "a", "c"),
    "offset_assignment": "goa",
    "bank_assignment": "anneal",
    "compaction": "optimal",
    "label_cache": False,
}


def test_non_default_table_covers_every_field():
    names = {spec.name for spec in fields(RecordOptions)}
    assert set(NON_DEFAULT) == names
    default = RecordOptions()
    for name, value in NON_DEFAULT.items():
        assert getattr(default, name) != value, name


@pytest.mark.parametrize("name", sorted(NON_DEFAULT))
def test_each_field_survives_the_round_trip(name):
    options = RecordOptions(**{name: NON_DEFAULT[name]})
    rebuilt = RecordOptions.from_dict(options.to_dict())
    assert rebuilt == options
    assert getattr(rebuilt, name) == NON_DEFAULT[name]


def test_all_fields_at_once_survive():
    options = RecordOptions(**NON_DEFAULT)
    assert RecordOptions.from_dict(options.to_dict()) == options


def test_to_dict_is_json_safe():
    blob = json.dumps(RecordOptions(**NON_DEFAULT).to_dict(),
                      sort_keys=True)
    rebuilt = RecordOptions.from_dict(json.loads(blob))
    assert rebuilt == RecordOptions(**NON_DEFAULT)
    assert rebuilt.scalar_order == ("b", "a", "c")   # tuple restored


def test_unknown_field_is_rejected():
    with pytest.raises(ValueError, match="no_such_knob"):
        RecordOptions.from_dict({"no_such_knob": 1})


def test_partial_dict_fills_defaults():
    rebuilt = RecordOptions.from_dict({"metric": "speed"})
    assert rebuilt == RecordOptions(metric="speed")


def test_options_payload_uses_the_canonical_form():
    options = RecordOptions(**NON_DEFAULT)
    payload = options_payload(options)
    assert payload["class"] == "RecordOptions"
    assert payload["fields"] == options.to_dict()
    assert options_payload(None) is None
