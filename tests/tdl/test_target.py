"""Integration tests for TDL-generated targets."""

import pathlib

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.codegen.timing import predict_cycles
from repro.dfl import compile_dfl
from repro.dspstone import all_kernels, kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.tdl import TdlTarget, load_target, parse_tdl

FPC = FixedPointContext(16)
DEMO16 = pathlib.Path("examples/targets/demo16.tdl").read_text()
KERNELS = [spec.name for spec in all_kernels()]


@pytest.fixture(scope="module")
def demo16():
    return load_target(DEMO16)


def test_description_reflected_in_model(demo16):
    assert demo16.name == "tdl:demo16"
    assert demo16.STREAM_ADDRESS_REGISTERS[0] == "P0"
    assert demo16.LOOP_ADDRESS_REGISTERS == ["C0", "C1"]
    grammar = demo16.grammar()
    assert grammar.resource_of("acc") == "acc"
    assert grammar.resource_of("treg") == "t"


def test_clobbers_derived_from_semantics(demo16):
    grammar = demo16.grammar()
    mac = next(rule for rule in grammar.rules if rule.name == "MAC")
    assert mac.clobbers == frozenset({"acc"})
    lt = next(rule for rule in grammar.rules if rule.name == "LT")
    assert lt.clobbers == frozenset({"t"})


@pytest.mark.parametrize("name", KERNELS)
def test_all_kernels_bit_exact(name, demo16):
    spec = kernel(name)
    compiled = RecordCompiler(demo16).compile(spec.program)
    for seed in (0, 1):
        reference = spec.program.initial_environment()
        for key, value in spec.inputs(seed=seed).items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, FPC)
        outputs, _ = run_compiled(compiled, spec.inputs(seed=seed))
        for symbol in spec.program.symbols.values():
            if symbol.role == "output":
                assert outputs[symbol.name] == reference[symbol.name]


@pytest.mark.parametrize("name", ["fir", "convolution",
                                  "iir_biquad_N_sections"])
def test_timing_prediction_holds_on_tdl_targets(name, demo16):
    spec = kernel(name)
    compiled = RecordCompiler(demo16).compile(spec.program)
    _outputs, state = run_compiled(compiled, spec.inputs(seed=0))
    assert predict_cycles(compiled.code).total_cycles == state.cycles


def test_fused_mac_rules_selected(demo16):
    spec = kernel("fir")
    compiled = RecordCompiler(demo16).compile(spec.program)
    opcodes = [instr.opcode for instr in compiled.code.instructions()]
    assert "MACQ" in opcodes           # the Q15 fused form from the file


def test_changing_the_description_changes_the_compiler():
    # strip the fused MAC rules: same kernel costs more words
    # (statements end in ';', so filter whole statements, not lines)
    statements = DEMO16.split(";")
    slim_text = ";".join(
        statement for statement in statements
        if not any(f"rule {name} " in statement
                   for name in ("MAC", "MACQ", "MSU", "MSUQ", "MPYQ")))
    slim = load_target(slim_text)
    full = load_target(DEMO16)
    program = kernel("fir").program
    slim_words = RecordCompiler(slim).compile(program).words()
    full_words = RecordCompiler(full).compile(program).words()
    assert slim_words > full_words


def test_read_modify_write_memory_semantics():
    target = load_target("""
target rmw;
register acc wide;
nonterm acc resource acc;
rule LD   acc <- mem sem acc = m0;
rule INCM stmt <- store(mem, add(acc, const(=0))) sem m0 = acc;
rule ST   stmt <- store(mem, acc) sem m0 = acc;
""")
    program = compile_dfl("""
program p;
input x; output y;
begin
  y := x;
end.
""")
    compiled = RecordCompiler(target).compile(program)
    outputs, _ = run_compiled(compiled, {"x": 42})
    assert outputs["y"] == 42


def test_nesting_beyond_counters_rejected(demo16):
    from repro.tdl.parser import TdlError
    program = compile_dfl("""
program deep;
input a[2]; output y;
var acc;
begin
  acc := 0;
  for i in 0 .. 1 do
    for j in 0 .. 1 do
      for k in 0 .. 1 do
        acc := acc + a[0];
      end;
    end;
  end;
  y := acc;
end.
""")
    with pytest.raises(TdlError):
        RecordCompiler(demo16).compile(program)


def test_semantics_word_ports_consistent(demo16):
    # logic on a wide accumulator wraps at the port, like every other
    # machine model (and the reference)
    program = compile_dfl("""
program ports;
input a, b, c;
output y;
begin
  y := sat((a * b) ^ c);
end.
""")
    compiled = RecordCompiler(demo16).compile(program)
    reference = program.initial_environment()
    reference.update({"a": 30000, "b": 29000, "c": -5})
    program.run(reference, FPC)
    outputs, _ = run_compiled(compiled,
                              {"a": 30000, "b": 29000, "c": -5})
    assert outputs["y"] == reference["y"]
