"""Unit tests for the TDL parser."""

import pytest

from repro.tdl.parser import ConstGuard, TdlError, parse_tdl

MINIMAL = """
target t;
word 16;
register acc wide;
nonterm acc resource acc;
rule LD acc <- mem sem acc = m0;
rule ST stmt <- store(mem, acc) sem m0 = acc;
"""


def test_minimal_description():
    description = parse_tdl(MINIMAL)
    assert description.name == "t"
    assert description.word_bits == 16
    assert description.registers["acc"].wide
    assert description.nonterm_resources == {"acc": "acc"}
    assert [rule.name for rule in description.rules] == ["LD", "ST"]


def test_comments_and_costs_and_asm():
    description = parse_tdl("""
target t;
register acc;            # the accumulator
nonterm acc resource acc;
rule LDI acc <- const(u8) asm "LDI %c0" cost 2,3 sem acc = c0;
""")
    rule = description.rules[0]
    assert rule.asm == "LDI %c0"
    assert (rule.words, rule.cycles) == (2, 3)


def test_pattern_shapes():
    description = parse_tdl("""
target t;
register acc wide;
register t;
nonterm acc resource acc;
nonterm treg resource t;
rule MACQ acc <- add(acc, shr(mul(treg, mem), const(=15)))
    sem acc = acc + ((t * m0) >> 15);
""")
    pattern = description.rules[0].pattern
    assert pattern.kind == "op" and pattern.name == "add"
    shr = pattern.children[1]
    assert shr.name == "shr"
    assert shr.children[1].guard.kind == "="
    assert shr.children[1].guard.value == 15


def test_const_guards():
    assert ConstGuard("u", 8).admits(255)
    assert not ConstGuard("u", 8).admits(256)
    assert not ConstGuard("u", 8).admits(-1)
    assert ConstGuard("s", 8).admits(-128)
    assert not ConstGuard("s", 8).admits(128)
    assert ConstGuard("=", 15).admits(15)
    assert not ConstGuard("=", 15).admits(14)
    assert ConstGuard("any").admits(99999)


def test_multiple_assignments():
    description = parse_tdl("""
target t;
register acc wide;
register t;
nonterm acc resource acc;
rule SWAPISH acc <- mem sem acc = m0, t = acc;
""")
    assignments = description.rules[0].assignments
    assert len(assignments) == 2
    assert assignments[1].dest == "t"


def test_error_unknown_resource():
    with pytest.raises(TdlError):
        parse_tdl("""
target t;
register acc;
nonterm acc resource nothere;
rule LD acc <- mem sem acc = m0;
""")


def test_error_unknown_register_in_sem():
    with pytest.raises(TdlError):
        parse_tdl("""
target t;
register acc;
nonterm acc resource acc;
rule LD acc <- mem sem zoom = m0;
""")


def test_error_no_rules():
    with pytest.raises(TdlError):
        parse_tdl("target t;\nword 16;\n")


def test_error_duplicate_register():
    with pytest.raises(TdlError):
        parse_tdl("""
target t;
register acc;
register acc;
nonterm acc resource acc;
rule LD acc <- mem sem acc = m0;
""")


def test_error_bad_guard():
    with pytest.raises(TdlError):
        parse_tdl("""
target t;
register acc;
nonterm acc resource acc;
rule LDI acc <- const(q4) sem acc = c0;
""")


def test_error_messages_carry_lines():
    with pytest.raises(TdlError) as excinfo:
        parse_tdl("target t;\nword banana;")
    assert "line 2" in str(excinfo.value)
