"""Unit tests for control-requirement justification."""

import pytest

from repro.rtl.components import (
    Constant, InstructionField, Mux, Register,
)
from repro.rtl.netlist import Netlist, Port
from repro.rtl.justify import (
    JustificationError, justify_value, merge_assignments,
)


def test_merge_assignments():
    assert merge_assignments({"a": 1}, {"b": 0}) == {"a": 1, "b": 0}
    assert merge_assignments({"a": 1}, {"a": 1}) == {"a": 1}
    assert merge_assignments({"a": 1}, {"a": 0}) is None


def net_with(*components):
    net = Netlist("j")
    for component in components:
        net.add(component)
    return net


def test_field_justifies_any_in_range_value():
    net = net_with(InstructionField("f", 2), Register("r"))
    net.connect(net.port("f", "out"), net.port("r", "load"))
    assert justify_value(net, net.port("r", "load"), 1) == [{"f": 1}]
    assert justify_value(net, net.port("r", "load"), 3) == [{"f": 3}]
    assert justify_value(net, net.port("r", "load"), 4) == []


def test_constant_justifies_only_its_value():
    net = net_with(Constant("c", 1), Register("r"))
    net.connect(net.port("c", "out"), net.port("r", "load"))
    assert justify_value(net, net.port("r", "load"), 1) == [{}]
    assert justify_value(net, net.port("r", "load"), 0) == []


def test_mux_enumerates_alternatives():
    net = net_with(Constant("zero", 0), Constant("one", 1),
                   InstructionField("sel", 1),
                   Mux("m", 2, kind="control"), Register("r"))
    net.connect(net.port("zero", "out"), net.port("m", "in0"))
    net.connect(net.port("one", "out"), net.port("m", "in1"))
    net.connect(net.port("sel", "out"), net.port("m", "sel"))
    net.connect(net.port("m", "out"), net.port("r", "load"))
    options = justify_value(net, net.port("r", "load"), 1)
    assert options == [{"sel": 1}]
    options = justify_value(net, net.port("r", "load"), 0)
    assert options == [{"sel": 0}]


def test_mux_of_fields_yields_multiple_alternatives():
    net = net_with(InstructionField("fa", 1), InstructionField("fb", 1),
                   InstructionField("sel", 1),
                   Mux("m", 2, kind="control"), Register("r"))
    net.connect(net.port("fa", "out"), net.port("m", "in0"))
    net.connect(net.port("fb", "out"), net.port("m", "in1"))
    net.connect(net.port("sel", "out"), net.port("m", "sel"))
    net.connect(net.port("m", "out"), net.port("r", "load"))
    options = justify_value(net, net.port("r", "load"), 1)
    assert {"sel": 0, "fa": 1} in options
    assert {"sel": 1, "fb": 1} in options


def test_undriven_port_raises():
    net = net_with(Register("r"))
    with pytest.raises(JustificationError):
        justify_value(net, net.port("r", "load"), 1)


def test_conflicting_requirements_prune():
    # same field drives both mux select and the selected input: only
    # consistent combinations survive
    net = net_with(InstructionField("f", 1),
                   Mux("m", 2, kind="control"), Register("r"))
    net.connect(net.port("f", "out"), net.port("m", "in0"))
    net.connect(net.port("f", "out"), net.port("m", "in1"))
    net.connect(net.port("f", "out"), net.port("m", "sel"))
    net.connect(net.port("m", "out"), net.port("r", "load"))
    # value 1 requires f=1 (input) which selects in1 -> consistent
    options = justify_value(net, net.port("r", "load"), 1)
    assert options == [{"f": 1}]
    # value 0 requires f=0 selecting in0 carrying f=0 -> consistent
    options = justify_value(net, net.port("r", "load"), 0)
    assert options == [{"f": 0}]
