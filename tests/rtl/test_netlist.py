"""Unit tests for netlist construction, validation and simulation."""

import pytest

from repro.rtl.components import (
    Alu, Constant, InstructionField, Memory, Mux, Register, RegisterFile,
)
from repro.rtl.netlist import Netlist, NetlistError, Port


def tiny_alu_net():
    """reg <- alu(reg, const 1), controlled by fields."""
    net = Netlist("tiny")
    reg = net.add(Register("r"))
    one = net.add(Constant("one", 1))
    alu = net.add(Alu("alu", {0: "add", 1: "sub"}))
    ctl = net.add(InstructionField("ctl", 1))
    load = net.add(InstructionField("ld", 1))
    net.connect(Port(reg, "out"), Port(alu, "a"))
    net.connect(Port(one, "out"), Port(alu, "b"))
    net.connect(Port(ctl, "out"), Port(alu, "ctl"))
    net.connect(Port(alu, "out"), Port(reg, "in"))
    net.connect(Port(load, "out"), Port(reg, "load"))
    return net


def test_component_duplicate_rejected():
    net = Netlist("n")
    net.add(Register("r"))
    with pytest.raises(NetlistError):
        net.add(Register("r"))


def test_connect_direction_checks():
    net = Netlist("n")
    reg = net.add(Register("r"))
    field = net.add(InstructionField("f", 1))
    with pytest.raises(NetlistError):
        net.connect(Port(reg, "in"), Port(reg, "out"))
    net.connect(Port(field, "out"), Port(reg, "load"))
    with pytest.raises(NetlistError):       # double driver
        net.connect(Port(field, "out"), Port(reg, "load"))


def test_validate_finds_undriven_inputs():
    net = Netlist("n")
    net.add(Register("r"))
    with pytest.raises(NetlistError) as excinfo:
        net.validate()
    assert "undriven" in str(excinfo.value)


def test_step_counts_and_wraps():
    net = tiny_alu_net()
    storage = net.initial_storage()
    storage = net.step(storage, {"ctl": 0, "ld": 1})
    storage = net.step(storage, {"ctl": 0, "ld": 1})
    assert storage.registers["r"] == 2
    storage = net.step(storage, {"ctl": 1, "ld": 1})
    assert storage.registers["r"] == 1
    # load disabled: value held
    storage = net.step(storage, {"ctl": 0, "ld": 0})
    assert storage.registers["r"] == 1


def test_step_requires_all_fields():
    net = tiny_alu_net()
    with pytest.raises(NetlistError):
        net.step(net.initial_storage(), {"ctl": 0})


def test_field_width_enforced():
    net = tiny_alu_net()
    with pytest.raises(NetlistError):
        net.step(net.initial_storage(), {"ctl": 2, "ld": 0})


def test_memory_and_register_file_step():
    net = Netlist("mem")
    mem = net.add(Memory("m", 8))
    regs = net.add(RegisterFile("rf", 4))
    addr = net.add(InstructionField("addr", 3))
    raddr = net.add(InstructionField("ra", 2))
    waddr = net.add(InstructionField("wa", 2))
    we_m = net.add(InstructionField("wem", 1))
    we_r = net.add(InstructionField("wer", 1))
    # rf[wa] := m[addr];  m[addr] := rf[ra]
    net.connect(Port(addr, "out"), Port(mem, "addr"))
    net.connect(Port(we_m, "out"), Port(mem, "we"))
    net.connect(Port(raddr, "out"), Port(regs, "raddr"))
    net.connect(Port(waddr, "out"), Port(regs, "waddr"))
    net.connect(Port(we_r, "out"), Port(regs, "we"))
    net.connect(Port(mem, "out"), Port(regs, "in"))
    net.connect(Port(regs, "out"), Port(mem, "in"))
    net.validate()
    storage = net.initial_storage()
    storage.memories["m"][5] = 42
    fields = {"addr": 5, "ra": 0, "wa": 1, "wem": 0, "wer": 1}
    storage = net.step(storage, fields)
    assert storage.register_files["rf"][1] == 42
    # now write rf[1] back to m[2]
    fields = {"addr": 2, "ra": 1, "wa": 0, "wem": 1, "wer": 0}
    storage = net.step(storage, fields)
    assert storage.memories["m"][2] == 42


def test_mux_select_range_checked():
    net = Netlist("mux")
    reg = net.add(Register("r"))
    mux = net.add(Mux("m", 2))
    a = net.add(Constant("ca", 1))
    b = net.add(Constant("cb", 2))
    sel = net.add(InstructionField("sel", 2))   # wider than needed
    ld = net.add(Constant("on", 1))
    net.connect(Port(a, "out"), Port(mux, "in0"))
    net.connect(Port(b, "out"), Port(mux, "in1"))
    net.connect(Port(sel, "out"), Port(mux, "sel"))
    net.connect(Port(mux, "out"), Port(reg, "in"))
    net.connect(Port(ld, "out"), Port(reg, "load"))
    storage = net.initial_storage()
    assert net.step(storage, {"sel": 1}).registers["r"] == 2
    with pytest.raises(NetlistError):
        net.step(storage, {"sel": 3})


def test_combinational_cycle_detected():
    net = Netlist("loop")
    alu = net.add(Alu("alu", {0: "add"}))
    zero = net.add(Constant("z", 0))
    reg = net.add(Register("r"))
    on = net.add(Constant("on", 1))
    net.connect(Port(alu, "out"), Port(alu, "a"))   # self-loop
    net.connect(Port(zero, "out"), Port(alu, "b"))
    net.connect(Port(zero, "out"), Port(alu, "ctl"))
    net.connect(Port(alu, "out"), Port(reg, "in"))
    net.connect(Port(on, "out"), Port(reg, "load"))
    with pytest.raises(NetlistError) as excinfo:
        net.step(net.initial_storage(), {})
    assert "cycle" in str(excinfo.value)


def test_component_validation():
    with pytest.raises(ValueError):
        InstructionField("f", 0)
    with pytest.raises(ValueError):
        Memory("m", 0)
    with pytest.raises(ValueError):
        Mux("m", 1)
    with pytest.raises(ValueError):
        Alu("a", {})
    with pytest.raises(ValueError):
        Alu("a", {0: "frob"})
