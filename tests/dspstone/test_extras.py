"""Tests for the extra DSPStone kernels (lms, matrix_1x3)."""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone.extras import all_extra_kernels, extra_kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)
NAMES = [spec.name for spec in all_extra_kernels()]


def reference_env(spec, seed):
    env = spec.program.initial_environment()
    for key, value in spec.inputs(seed=seed).items():
        env[key] = list(value) if isinstance(value, list) else value
    spec.program.run(env, FPC)
    return env


def check(spec, compiled, seed):
    reference = reference_env(spec, seed)
    outputs, _ = run_compiled(compiled, spec.inputs(seed=seed))
    for symbol in spec.program.symbols.values():
        if symbol.role in ("output", "state") or symbol.is_array:
            assert outputs[symbol.name] == reference[symbol.name], \
                (spec.name, compiled.compiler, symbol.name)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("target_cls", [TC25, M56, Risc16])
def test_record_all_targets(name, target_cls):
    spec = extra_kernel(name)
    compiled = RecordCompiler(target_cls()).compile(spec.program)
    for seed in (0, 1):
        check(spec, compiled, seed)


@pytest.mark.parametrize("name", NAMES)
def test_baseline_tc25(name):
    spec = extra_kernel(name)
    compiled = BaselineCompiler(TC25()).compile(spec.program)
    for seed in (0, 1):
        check(spec, compiled, seed)


def test_lms_converges():
    """Run the compiled LMS filter as an adaptive loop: driving it with
    a fixed target system's output must shrink the error."""
    spec = extra_kernel("lms")
    compiled = RecordCompiler(TC25()).compile(spec.program)
    import random
    rng = random.Random(0)

    # unknown system: a simple 3-tap FIR the LMS should identify
    true_taps = [9830, -4915, 2458]          # Q15
    signal_history = [0] * 8
    state = None
    errors = []
    for step in range(400):
        sample = rng.randint(-1500, 1500)
        signal_history = [sample] + signal_history[:-1]
        desired = sum((tap * value) >> 15
                      for tap, value in zip(true_taps, signal_history))
        inputs = {"x0": sample, "d": desired}
        outputs, state = run_compiled(compiled, inputs, state=state)
        errors.append(abs(outputs["e"]))
    early = sum(errors[:50]) / 50
    late = sum(errors[-50:]) / 50
    assert late < early / 2, (early, late)


def test_matrix_1x3_math():
    spec = extra_kernel("matrix_1x3")
    inputs = spec.inputs(seed=3)
    reference = reference_env(spec, 3)
    a, x = inputs["a"], inputs["x"]
    for row in range(3):
        expected = sum(a[3 * row + col] * x[col] for col in range(3))
        assert reference["y"][row] == FPC.wrap(expected)


def test_matrix_streams_share_one_register():
    """The stride-3 walk with offsets 0/1/2 merges onto one AR."""
    spec = extra_kernel("matrix_1x3")
    compiled = RecordCompiler(TC25()).compile(spec.program)
    pointer_loads = [i for i in compiled.code.instructions()
                     if i.opcode == "LRLK"]
    # one register for the merged a-chain, one for the y walk
    assert len(pointer_loads) == 2


def test_unknown_extra_kernel():
    with pytest.raises(KeyError):
        extra_kernel("fft")
