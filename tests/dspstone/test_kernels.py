"""Unit tests for the DSPStone kernel suite definitions."""

import pytest

from repro.dspstone import KERNEL_NAMES, all_kernels, kernel
from repro.ir.fixedpoint import FixedPointContext

FPC = FixedPointContext(16)


def test_table1_row_order_and_count():
    assert KERNEL_NAMES == (
        "real_update", "complex_multiply", "complex_update",
        "n_real_updates", "n_complex_updates", "fir",
        "iir_biquad_one_section", "iir_biquad_N_sections",
        "dot_product", "convolution",
    )


def test_unknown_kernel_lists_available():
    with pytest.raises(KeyError) as excinfo:
        kernel("fft")
    assert "real_update" in str(excinfo.value)


def test_every_kernel_compiles_and_runs_in_reference():
    for spec in all_kernels():
        program = spec.program
        env = program.initial_environment()
        for key, value in spec.inputs(seed=0).items():
            env[key] = list(value) if isinstance(value, list) else value
        program.run(env, FPC)
        for symbol in program.outputs():
            assert symbol.name in env


def test_inputs_are_seeded_and_deterministic():
    for spec in all_kernels():
        assert spec.inputs(seed=3) == spec.inputs(seed=3)
        assert spec.inputs(seed=3) != spec.inputs(seed=4)


def test_paper_percentages_recorded():
    fir = kernel("fir")
    assert (fir.paper_baseline_pct, fir.paper_record_pct) == (700, 200)
    biquad = kernel("iir_biquad_one_section")
    assert biquad.paper_baseline_pct < biquad.paper_record_pct


# -- semantic spot checks against closed-form math ----------------------

def run_reference(name, seed=0):
    spec = kernel(name)
    program = spec.program
    env = program.initial_environment()
    inputs = spec.inputs(seed=seed)
    for key, value in inputs.items():
        env[key] = list(value) if isinstance(value, list) else value
    program.run(env, FPC)
    return inputs, env


def test_real_update_math():
    inputs, env = run_reference("real_update")
    assert env["d"] == FPC.wrap(inputs["a"] * inputs["b"] + inputs["c"])


def test_complex_multiply_math():
    inputs, env = run_reference("complex_multiply")
    ar, ai = inputs["ar"], inputs["ai"]
    br, bi = inputs["br"], inputs["bi"]
    assert env["cr"] == FPC.wrap(ar * br - ai * bi)
    assert env["ci"] == FPC.wrap(ar * bi + ai * br)


def test_n_real_updates_math():
    inputs, env = run_reference("n_real_updates")
    expected = [FPC.wrap(a * b + c) for a, b, c in
                zip(inputs["a"], inputs["b"], inputs["c"])]
    assert env["d"] == expected


def test_fir_math():
    inputs, env = run_reference("fir")
    x = list(inputs["x"])
    x[0] = inputs["x0"]
    acc = sum((h * xi) >> 15 for h, xi in zip(inputs["h"], x))
    assert env["y"] == FPC.wrap(acc)
    # delay line shifted up with the new sample in place
    assert env["x"][1:] == x[:-1]


def test_convolution_math():
    inputs, env = run_reference("convolution")
    n = len(inputs["x"])
    acc = sum(inputs["x"][i] * inputs["h"][n - 1 - i] for i in range(n))
    assert env["y"] == FPC.wrap(acc)


def test_iir_biquad_one_section_math():
    inputs, env = run_reference("iir_biquad_one_section")
    w1, w2 = inputs[".h.w"]
    w = inputs["x"] - ((inputs["a1"] * w1) >> 15) \
        - ((inputs["a2"] * w2) >> 15)
    w = FPC.wrap(w)
    y = ((inputs["b0"] * w) >> 15) + ((inputs["b1"] * w1) >> 15) \
        + ((inputs["b2"] * w2) >> 15)
    assert env["y"] == FPC.wrap(y)
    assert env[".h.w"] == [w, w1]
