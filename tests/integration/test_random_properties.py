"""Random-program properties: encoding roundtrips and exact timing.

Extends the differential fuzzer's program generator to two more
system-level properties:

1. every randomly generated TC25 program assembles to a binary image of
   exactly its declared size, and the *disassembled* image simulates to
   identical outputs;
2. the static timing analysis predicts the simulated cycle count
   exactly, on every target, for every random program.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.compiled import CompiledProgram
from repro.codegen.pipeline import RecordCompiler
from repro.codegen.timing import predict_cycles
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25
from repro.targets.tc25_encoding import assemble, disassemble

from tests.integration.test_differential import (
    build_program, inputs_for,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_encoding_roundtrip_on_random_programs(seed):
    _source, program = build_program(seed)
    inputs = inputs_for(seed)
    for compiled in (RecordCompiler(TC25()).compile(program),
                     BaselineCompiler(TC25()).compile(program)):
        image = assemble(compiled)
        assert len(image) == compiled.words()
        decoded = CompiledProgram(
            name=compiled.name, target=compiled.target,
            code=disassemble(image), memory_map=compiled.memory_map,
            symbols=compiled.symbols,
            pmem_tables=compiled.pmem_tables)
        original, _ = run_compiled(compiled, inputs)
        replayed, _ = run_compiled(decoded, inputs)
        assert original == replayed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_timing_prediction_exact_on_random_programs(seed):
    _source, program = build_program(seed)
    inputs = inputs_for(seed)
    for target in (TC25(), M56(), Risc16()):
        compiled = RecordCompiler(target).compile(program)
        _outputs, state = run_compiled(compiled, inputs)
        assert predict_cycles(compiled.code).total_cycles == \
            state.cycles, target.name
