"""Degenerate programs must compile and run, not crash."""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

ALL_TARGETS = [TC25, M56, Risc16]


@pytest.mark.parametrize("target_cls", ALL_TARGETS)
def test_empty_body(target_cls):
    program = compile_dfl("""
program empty;
input x;
output y;
begin
end.
""")
    compiled = RecordCompiler(target_cls()).compile(program)
    outputs, state = run_compiled(compiled, {"x": 5})
    assert outputs["y"] == 0
    assert state.cycles == 0
    assert compiled.words() == 0


@pytest.mark.parametrize("target_cls", ALL_TARGETS)
def test_constant_only(target_cls):
    program = compile_dfl("""
program consts;
output y;
begin
  y := 3 * 7 + 1;
end.
""")
    compiled = RecordCompiler(target_cls()).compile(program)
    outputs, _ = run_compiled(compiled, {})
    assert outputs["y"] == 22


def test_single_iteration_loop():
    program = compile_dfl("""
program once;
input a[1];
output y;
begin
  for i in 0 .. 0 do
    y := a[i];
  end;
end.
""")
    for target_cls in ALL_TARGETS:
        compiled = RecordCompiler(target_cls()).compile(program)
        outputs, _ = run_compiled(compiled, {"a": [42]})
        assert outputs["y"] == 42, target_cls.__name__


def test_self_assignment():
    program = compile_dfl("""
program selfish;
input x;
output y;
begin
  y := x;
  y := y + y;
  y := y;
end.
""")
    for compiler in (RecordCompiler(TC25()), BaselineCompiler(TC25())):
        compiled = compiler.compile(program)
        outputs, _ = run_compiled(compiled, {"x": 21})
        assert outputs["y"] == 42


def test_extreme_values_wrap_consistently():
    program = compile_dfl("""
program extremes;
input a, b;
output s, d, p;
begin
  s := a + b;
  d := a - b;
  p := a * b;
end.
""")
    from repro.ir.fixedpoint import FixedPointContext
    fpc = FixedPointContext(16)
    for a, b in [(32767, 32767), (-32768, -32768), (-32768, 32767),
                 (32767, 1), (-32768, -1)]:
        reference = program.initial_environment()
        reference.update({"a": a, "b": b})
        program.run(reference, fpc)
        for target_cls in ALL_TARGETS:
            compiled = RecordCompiler(target_cls()).compile(program)
            outputs, _ = run_compiled(compiled, {"a": a, "b": b})
            for name in ("s", "d", "p"):
                assert outputs[name] == reference[name], \
                    (target_cls.__name__, name, a, b)


def test_deep_expression_nesting():
    # 24-deep left spine: exercises the selector's recursion comfortably
    expr = "x"
    for _ in range(24):
        expr = f"({expr}) + 1"
    program = compile_dfl(f"""
program deep;
input x;
output y;
begin
  y := {expr};
end.
""")
    compiled = RecordCompiler(TC25()).compile(program)
    outputs, _ = run_compiled(compiled, {"x": 0})
    assert outputs["y"] == 24
