"""Differential testing: random MiniDFL programs, every compiler.

Hypothesis generates whole MiniDFL programs (declarations, nested
expressions, loops over arrays, delay lines); each is compiled by the
RECORD pipeline for every target (and by the baseline for the TC25) and
executed -- outputs must match the reference interpreter bit-exactly.
This is the fuzzing harness that shook out the evaluation-order,
aliasing and wrap-semantics corners during development; it stays in the
suite as the strongest regression net the repository has.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)

SCALARS = ["s0", "s1", "s2"]
ARRAYS = ["v0", "v1"]
ARRAY_SIZE = 6
LOOP_INDEXES = [("i", 1, 0), ("i", 1, 1), ("i", -1, ARRAY_SIZE - 2)]


class ProgramBuilder:
    """Generates a random-but-valid MiniDFL program from rng draws."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def expression(self, depth: int, in_loop: bool) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            choice = rng.random()
            if choice < 0.35:
                return rng.choice(SCALARS)
            if choice < 0.55:
                return str(rng.randint(0, 200))
            array = rng.choice(ARRAYS)
            if in_loop and rng.random() < 0.7:
                _var, coeff, offset = rng.choice(LOOP_INDEXES)
                if coeff == 1:
                    index = f"i+{offset}" if offset else "i"
                else:
                    index = f"{ARRAY_SIZE - 2}-i" \
                        if offset == ARRAY_SIZE - 2 else f"-i+{offset}"
                return f"{array}[{index}]"
            return f"{array}[{rng.randint(0, ARRAY_SIZE - 1)}]"
        operator = rng.choice(["+", "-", "*", "&", "|", "^"])
        left = self.expression(depth - 1, in_loop)
        right = self.expression(depth - 1, in_loop)
        if rng.random() < 0.15:
            return f"sat(({left}) {operator} ({right}))"
        if operator == "*" and rng.random() < 0.3:
            return f"((({left}) * ({right})) >> 3)"
        return f"({left}) {operator} ({right})"

    def statement(self, in_loop: bool) -> str:
        rng = self.rng
        expr = self.expression(rng.randint(1, 3), in_loop)
        if rng.random() < 0.4:
            array = rng.choice(ARRAYS)
            if in_loop and rng.random() < 0.6:
                return f"{array}[i] := {expr};"
            return f"{array}[{rng.randint(0, ARRAY_SIZE - 1)}] := {expr};"
        return f"{rng.choice(SCALARS)} := {expr};"

    def build(self) -> str:
        rng = self.rng
        lines = ["program fuzz;",
                 f"input {', '.join(SCALARS)};",
                 f"input {', '.join(f'{a}[{ARRAY_SIZE}]' for a in ARRAYS)};",
                 "output o0, o1;",
                 "begin"]
        for _ in range(rng.randint(1, 3)):
            lines.append("  " + self.statement(in_loop=False))
        if rng.random() < 0.7:
            lines.append(f"  for i in 0 .. {ARRAY_SIZE - 2} do")
            for _ in range(rng.randint(1, 2)):
                lines.append("    " + self.statement(in_loop=True))
            if rng.random() < 0.3:
                # nested inner loop (only its own variable may index,
                # so retarget the induction uses from i to j)
                inner = self.statement(in_loop=True) \
                    .replace("[i", "[j").replace("-i]", "-j]")
                lines.append("    for j in 0 .. 2 do")
                lines.append("      " + inner)
                lines.append("    end;")
            lines.append("  end;")
        lines.append("  o0 := " + self.expression(2, False) + ";")
        lines.append("  o1 := " + self.expression(2, False) + ";")
        lines.append("end.")
        return "\n".join(lines)


def build_program(seed: int):
    """Build a random program; samples rejected by the frontend's
    (documented) alias diagnostic are skipped, not failures."""
    from hypothesis import assume

    from repro.dfl.errors import DflSemanticError

    source = ProgramBuilder(random.Random(seed)).build()
    try:
        program = compile_dfl(source)
    except DflSemanticError as error:
        assert "disambiguate" in str(error), source
        assume(False)
    return source, program


def reference_of(program, inputs):
    env = program.initial_environment()
    for key, value in inputs.items():
        env[key] = list(value) if isinstance(value, list) else value
    program.run(env, FPC)
    return env


def inputs_for(seed: int):
    rng = random.Random(seed * 7919 + 13)
    values = {name: rng.randint(-150, 150) for name in SCALARS}
    for array in ARRAYS:
        values[array] = [rng.randint(-150, 150)
                         for _ in range(ARRAY_SIZE)]
    return values


def assert_compiled_matches(program, compiled, inputs, reference, tag):
    outputs, _state = run_compiled(compiled, inputs)
    for symbol in program.symbols.values():
        if symbol.role == "output":
            assert outputs[symbol.name] == reference[symbol.name], (
                tag, symbol.name, outputs[symbol.name],
                reference[symbol.name])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=3))
def test_differential_tc25(seed, input_seed):
    source, program = build_program(seed)
    inputs = inputs_for(seed * 4 + input_seed)
    reference = reference_of(program, inputs)
    record = RecordCompiler(TC25()).compile(program)
    assert_compiled_matches(program, record, inputs, reference,
                            ("record", source))
    baseline = BaselineCompiler(TC25()).compile(program)
    assert_compiled_matches(program, baseline, inputs, reference,
                            ("baseline", source))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_differential_m56(seed):
    source, program = build_program(seed)
    inputs = inputs_for(seed)
    reference = reference_of(program, inputs)
    compiled = RecordCompiler(M56()).compile(program)
    assert_compiled_matches(program, compiled, inputs, reference,
                            ("m56", source))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_differential_risc16(seed):
    source, program = build_program(seed)
    inputs = inputs_for(seed)
    reference = reference_of(program, inputs)
    compiled = RecordCompiler(Risc16()).compile(program)
    assert_compiled_matches(program, compiled, inputs, reference,
                            ("risc16", source))
