"""The opt-in MACD sum+shift fusion (beyond 1997 RECORD)."""

import pytest

from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.codegen.timing import predict_cycles
from repro.dfl import compile_dfl
from repro.dspstone import all_kernels, kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)
FUSED = RecordOptions(fuse_shift_idioms=True)


def test_fir_uses_macd_and_shrinks():
    spec = kernel("fir")
    fused = RecordCompiler(TC25(), FUSED).compile(spec.program)
    plain = RecordCompiler(TC25()).compile(spec.program)
    opcodes = [i.opcode for i in fused.code.instructions()]
    assert "MACD" in opcodes
    assert "DMOV" not in opcodes          # the shift loop is gone
    assert fused.words() < plain.words()
    # the coefficient table streams reversed
    table = fused.pmem_tables[0]
    assert table.stride == -1


def test_fused_fir_bit_exact_with_state():
    spec = kernel("fir")
    compiled = RecordCompiler(TC25(), FUSED).compile(spec.program)
    for seed in range(3):
        reference = spec.program.initial_environment()
        for key, value in spec.inputs(seed=seed).items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, FPC)
        outputs, _ = run_compiled(compiled, spec.inputs(seed=seed))
        assert outputs["y"] == reference["y"]
        assert outputs["x"] == reference["x"]       # delay line too


def test_fused_fir_streams_correctly():
    spec = kernel("fir")
    compiled = RecordCompiler(TC25(), FUSED).compile(spec.program)
    reference = spec.program.initial_environment()
    reference["h"] = spec.inputs(0)["h"]
    state = None
    for sample in (100, -200, 300, -400, 500):
        reference["x0"] = sample
        spec.program.run(reference, FPC)
        outputs, state = run_compiled(
            compiled, {"x0": sample, "h": reference["h"]}, state=state)
        assert outputs["y"] == reference["y"], sample
        assert outputs["x"] == reference["x"], sample


def test_timing_prediction_holds_with_fusion():
    spec = kernel("fir")
    compiled = RecordCompiler(TC25(), FUSED).compile(spec.program)
    _outputs, state = run_compiled(compiled, spec.inputs(seed=0))
    assert predict_cycles(compiled.code).total_cycles == state.cycles


def test_all_kernels_stay_correct_with_fusion_enabled():
    for spec in all_kernels():
        compiled = RecordCompiler(TC25(), FUSED).compile(spec.program)
        reference = spec.program.initial_environment()
        for key, value in spec.inputs(seed=0).items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, FPC)
        outputs, _ = run_compiled(compiled, spec.inputs(seed=0))
        for symbol in spec.program.symbols.values():
            if symbol.role == "output":
                assert outputs[symbol.name] == reference[symbol.name], \
                    spec.name


def test_fusion_requires_matching_shift_range():
    # shift covers one element short of the sum: must NOT fuse
    program = compile_dfl("""
program partial;
const N = 8;
input x0; input h[N];
var x[N];
output y;
var acc;
begin
  x[0] := x0;
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + ((h[i] * x[i]) >> 15);
  end;
  for k in 0 .. N-3 do
    x[N-1-k] := x[N-2-k];
  end;
  y := acc;
end.
""")
    compiled = RecordCompiler(TC25(), FUSED).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    assert "MACD" not in opcodes


def test_fusion_blocked_by_intervening_use():
    # the data array is read between the two loops: must NOT fuse
    program = compile_dfl("""
program blocked;
const N = 8;
input x0; input h[N];
var x[N];
output y, peek;
var acc;
begin
  x[0] := x0;
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + ((h[i] * x[i]) >> 15);
  end;
  peek := x[3];
  for k in 0 .. N-2 do
    x[N-1-k] := x[N-2-k];
  end;
  y := acc;
end.
""")
    compiled = RecordCompiler(TC25(), FUSED).compile(program)
    opcodes = [i.opcode for i in compiled.code.instructions()]
    assert "MACD" not in opcodes
    # still correct, of course
    inputs = {"x0": 500, "h": [1000] * 8, "x": [1, 2, 3, 4, 5, 6, 7, 8]}
    reference = program.initial_environment()
    for key, value in inputs.items():
        reference[key] = list(value) if isinstance(value, list) else value
    program.run(reference, FPC)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == reference["y"]
    assert outputs["peek"] == reference["peek"]
