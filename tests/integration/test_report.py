"""The report generator produces all sections with live numbers."""

from repro.evalx.report import (
    conformance_section, cube_section, full_report, table1_section,
)


def test_table1_section_contains_live_numbers():
    section = table1_section()
    assert "RECORD wins" in section
    assert "fir" in section


def test_cube_section():
    section = cube_section()
    assert "DSP core" in section and "ASSP" in section


def test_conformance_section_is_clean():
    section = conformance_section(count=3, seed=0)
    assert "all cells agree with the IR oracle" in section


def test_full_report_has_all_sections():
    report = full_report()
    for heading in ("Table 1", "Sec. 3.1", "Sec. 3.3", "Sec. 4.2",
                    "Fig. 1", "Sec. 4.5", "Conformance"):
        assert heading in report, heading
    # markdown structure: fenced blocks come in pairs
    assert report.count("```") % 2 == 0
