"""Regression tests for extended-precision values crossing memory.

Each of these programs was found by the differential fuzzer as a real
miscompile before the width-safety work (exact seeds noted); they pin
the three mechanisms:

1. decompose duplicates wide shared nodes instead of wrapping them in a
   16-bit temporary;
2. the selector spills wide cut values through the target's
   double-width path (TC25: SACH/SACL + ZALH/ADDS);
3. word-port operands (multiplier, logic unit) wrap by defined
   semantics, consistently in the reference interpreter and in every
   machine model.
"""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)


def check_everywhere(source, inputs):
    program = compile_dfl(source)
    reference = program.initial_environment()
    reference.update(inputs)
    program.run(reference, FPC)
    results = {}
    for label, compiled in [
        ("record/tc25", RecordCompiler(TC25()).compile(program)),
        ("baseline/tc25", BaselineCompiler(TC25()).compile(program)),
        ("record/m56", RecordCompiler(M56()).compile(program)),
        ("record/risc16", RecordCompiler(Risc16()).compile(program)),
    ]:
        outputs, _ = run_compiled(compiled, inputs)
        for symbol in program.symbols.values():
            if symbol.role == "output":
                assert outputs[symbol.name] == reference[symbol.name], \
                    (label, symbol.name, outputs[symbol.name],
                     reference[symbol.name])
        results[label] = compiled
    return program, results


def test_forwarded_read_sees_wrapped_store():
    # fuzzer seed 668: s2 := s0; s0 := ...; o0 := f(s2) -- the s2 read
    # must observe the original s0, not the overwritten cell.
    check_everywhere("""
program war;
input s0, v[2];
output o0;
var s2;
begin
  s2 := s0;
  s0 := v[1] ^ 168;
  o0 := (v[0] - 131) ^ ((s2 * v[1]) >> 3);
end.
""", {"s0": -128, "v": [100, -50]})


def test_wide_product_into_sat_via_wide_spill():
    # fuzzer seed 4095 (o1): a 32-bit shifted product is subtracted and
    # saturated; the intermediate must not wrap through a 16-bit cell.
    program, results = check_everywhere("""
program wide;
input s1, s2;
output o1;
begin
  o1 := sat(s1 - ((s2 * 183) >> 3));
end.
""", {"s1": -30000, "s2": 30000})
    baseline = results["baseline/tc25"]
    opcodes = [i.opcode for i in baseline.code.instructions()]
    # the baseline (no algebraic search) takes the SACH/SACL spill path
    # or the rescue rewrite; either way the answer saturates correctly
    assert baseline.stats["selection"].wide_spills == 0 or \
        "SACH" in opcodes or "NEG" in opcodes


def test_wide_xor_operand_wraps_by_semantics():
    # fuzzer seed 235 (o0): the xor operand is a 32-bit product; the
    # logic unit is 16 bits wide, consistently in reference and machine.
    check_everywhere("""
program ports;
input s1, s2, a, b;
output o0;
begin
  o0 := sat((s2 + a) ^ (b * s1));
end.
""", {"s1": 30000, "s2": 20000, "a": 20000, "b": 29000})


def test_shared_wide_product_duplicated():
    # a*b shared by two exact consumers: sharing through a 16-bit temp
    # would wrap it; decompose must duplicate.
    check_everywhere("""
program sharing;
input a, b, c, d;
output y, z;
begin
  y := sat(((a * b) >> 1) + c);
  z := sat(((a * b) >> 1) - d);
end.
""", {"a": 30000, "b": 30000, "c": 5, "d": 9})


def test_saturating_sum_of_products():
    # the classic wide case: Q15 MAC chain saturated at the end
    check_everywhere("""
program macsat;
input a, b, c, d;
output y;
begin
  y := sat((a * b) + (c * d));
end.
""", {"a": 32000, "b": 32000, "c": 32000, "d": 32000})


def test_wide_spill_stats_visible():
    # a shape that forces a cut of a wide subtree under an exact
    # consumer on the baseline: either the wide path or a rescue must
    # fire, never a silent 16-bit wrap.
    program = compile_dfl("""
program spilly;
input s1, s2;
output o1;
begin
  o1 := sat(s1 - ((s2 * 183) >> 3));
end.
""")
    compiled = BaselineCompiler(TC25()).compile(program)
    stats = compiled.stats["selection"]
    assert stats.wide_spills == 0
