"""Integration: the Table 1 harness reproduces the paper's shape."""

import pytest

from repro.evalx.table1 import compute_table1, format_table1


@pytest.fixture(scope="module")
def rows():
    return compute_table1(seeds=2)


def test_all_rows_verified(rows):
    assert len(rows) == 10
    assert all(row.verified for row in rows)


def test_hand_is_the_floor(rows):
    for row in rows:
        assert row.baseline_pct >= 100
        assert row.record_pct >= 100


def test_shape_record_wins_majority(rows):
    wins = sum(1 for row in rows if row.winner == "record")
    losses = sum(1 for row in rows if row.winner == "baseline")
    ties = sum(1 for row in rows if row.winner == "tie")
    assert wins >= 4                       # paper: 6
    assert wins > losses                   # retargetable competes
    assert ties >= 1                       # trivial kernels tie


def test_shape_loop_kernels_show_large_gaps(rows):
    by_name = {row.kernel: row for row in rows}
    # the paper's headline gaps: fir and the N-loops
    for name in ("fir", "n_real_updates", "n_complex_updates"):
        row = by_name[name]
        assert row.baseline_words >= 2 * row.record_words, name


def test_shape_baseline_wins_a_straightline_kernel(rows):
    # the paper's crossover: the target-specific compiler takes
    # iir_biquad_one_section
    by_name = {row.kernel: row for row in rows}
    assert by_name["iir_biquad_one_section"].winner == "baseline"


def test_cycle_overhead_in_dspstone_band(rows):
    """Sec. 3.1: compiled-code overhead 'typically between 2 and 8'
    (cycles).  Our baseline lands in that band on the loop kernels,
    with FIR as the known outlier (the hand MACD idiom is extreme)."""
    by_name = {row.kernel: row for row in rows}
    ratios = []
    for name in ("fir", "n_real_updates", "n_complex_updates",
                 "iir_biquad_N_sections", "convolution"):
        row = by_name[name]
        ratio = row.baseline_cycles / max(row.hand_cycles, 1)
        assert ratio >= 2.0, (name, ratio)
        ratios.append(ratio)
    ratios.sort()
    median = ratios[len(ratios) // 2]
    assert 2.0 <= median <= 10.0, ratios


def test_formatting_contains_all_rows(rows):
    text = format_table1(rows)
    for row in rows:
        assert row.kernel in text
    assert "paper" in text
