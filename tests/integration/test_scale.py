"""Scalability: a realistically large program compiles fast and right.

A downstream adopter's sanity check: a multi-filter signal chain (a few
hundred IR statements after lowering) must compile on every target in
interactive time and still validate bit-exactly.
"""

import time

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)


def build_big_source(stages: int = 12) -> str:
    """A chain of biquad-ish stages plus mixing statements."""
    lines = ["program chain;",
             "input x;",
             "input " + ", ".join(
                 f"b{k}0, b{k}1, a{k}1" for k in range(stages)) + ";",
             "output y;",
             "var s, " + ", ".join(f"w{k}" for k in range(stages)) + ";",
             "begin",
             "  s := x;"]
    for k in range(stages):
        lines.append(f"  w{k} := s - ((a{k}1 * w{k}@1) >> 15);")
        lines.append(f"  s := ((b{k}0 * w{k}) >> 15)"
                     f" + ((b{k}1 * w{k}@1) >> 15);")
    lines.append("  y := sat(s);")
    lines.append("end.")
    return "\n".join(lines)


def test_large_chain_compiles_quickly_and_correctly():
    source = build_big_source()
    program = compile_dfl(source)

    inputs = {"x": 1234}
    import random
    rng = random.Random(5)
    for symbol in program.symbols.values():
        if symbol.role == "input" and symbol.name != "x":
            inputs[symbol.name] = rng.randint(-20000, 20000)

    reference = program.initial_environment()
    reference.update(inputs)
    program.run(reference, FPC)

    for compiler in (RecordCompiler(TC25()), RecordCompiler(M56()),
                     BaselineCompiler(TC25())):
        started = time.perf_counter()
        compiled = compiler.compile(program)
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0, (type(compiler).__name__, elapsed)
        outputs, _ = run_compiled(compiled, inputs)
        assert outputs["y"] == reference["y"], type(compiler).__name__
        assert compiled.words() > 100     # genuinely large program


def test_streaming_the_chain_stays_consistent():
    source = build_big_source(stages=4)
    program = compile_dfl(source)
    compiled = RecordCompiler(TC25()).compile(program)
    import random
    rng = random.Random(9)
    coefficients = {
        symbol.name: rng.randint(-15000, 15000)
        for symbol in program.symbols.values()
        if symbol.role == "input" and symbol.name != "x"
    }
    reference = program.initial_environment()
    reference.update(coefficients)
    machine_state = None
    for tick in range(25):
        sample = rng.randint(-2000, 2000)
        reference["x"] = sample
        program.run(reference, FPC)
        inputs = dict(coefficients)
        inputs["x"] = sample
        outputs, machine_state = run_compiled(compiled, inputs,
                                              state=machine_state)
        assert outputs["y"] == reference["y"], tick
