"""Unit tests for the high-level API and the CLI."""

import pytest

from repro import (
    available_kernels, available_targets, compile_kernel, compile_source,
)


def test_available_listings():
    assert "fir" in available_kernels()
    assert set(available_targets()) == {"tc25", "m56", "risc16", "asip"}


def test_compile_kernel_and_run():
    result = compile_kernel("real_update")
    outputs, cycles = result.run({"a": 10, "b": 20, "c": 30})
    assert outputs == {"d": 230}
    assert cycles == 5
    assert "real_update" in result.listing()
    assert result.words() == 5


def test_compile_kernel_other_compilers():
    for compiler in ("baseline", "hand"):
        result = compile_kernel("dot_product", compiler=compiler)
        outputs, _ = result.run({"a": [2, 3], "b": [10, 100]})
        assert outputs["y"] == 320


def test_compile_source_on_all_targets():
    source = """
program t;
input a, b; output y;
begin y := a * b + 1; end.
"""
    for target in available_targets():
        result = compile_source(source, target=target)
        outputs, _ = result.run({"a": 6, "b": 7})
        assert outputs["y"] == 43, target


def test_unknown_target_and_compiler():
    with pytest.raises(ValueError):
        compile_kernel("fir", target="z80")
    with pytest.raises(ValueError):
        compile_kernel("fir", compiler="gcc")


def test_run_filters_outputs_only():
    result = compile_kernel("fir")
    from repro.dspstone import kernel
    outputs, _ = result.run(kernel("fir").inputs(0))
    assert set(outputs) == {"y"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def run_cli(args, capsys):
    from repro.__main__ import main
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_list(capsys):
    code, out = run_cli(["list"], capsys)
    assert code == 0
    assert "fir" in out and "tc25" in out


def test_cli_compile(capsys):
    code, out = run_cli(["compile", "dot_product"], capsys)
    assert code == 0
    assert "SACL" in out


def test_cli_run_reports_prediction(capsys):
    code, out = run_cli(["run", "convolution", "--compiler", "hand"],
                        capsys)
    assert code == 0
    assert "MATCHES" in out


def test_cli_table1(capsys):
    code, out = run_cli(["table1"], capsys)
    assert code == 0
    assert "RECORD wins" in out


def test_cli_cube(capsys):
    code, out = run_cli(["cube"], capsys)
    assert code == 0
    assert "DSP core" in out


def test_cli_selftest(capsys):
    code, out = run_cli(["selftest", "--programs", "4"], capsys)
    assert code == 0
    assert "faults detected" in out
