"""Nested counted loops across targets (incl. the TC25 AR split)."""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)

NESTED = """
program nested;
const N = 4;
input  a[N];
output y;
var    acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    for j in 0 .. N-1 do
      acc := acc + a[j];
    end;
  end;
  y := acc;
end.
"""

NESTED_WITH_OUTER_STREAM = """
program nested2;
const N = 3;
input  a[N], b[N];
output y[N];
var    acc;
begin
  for i in 0 .. N-1 do
    acc := a[i];
    for j in 0 .. N-1 do
      acc := acc + b[j];
    end;
    y[i] := acc;
  end;
end.
"""


def reference(source, inputs):
    program = compile_dfl(source)
    env = program.initial_environment()
    for key, value in inputs.items():
        env[key] = list(value) if isinstance(value, list) else value
    program.run(env, FPC)
    return program, env


@pytest.mark.parametrize("target_cls", [TC25, M56, Risc16])
def test_simple_nesting(target_cls):
    inputs = {"a": [1, 2, 3, 4]}
    program, env = reference(NESTED, inputs)
    compiled = RecordCompiler(target_cls()).compile(program)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"] == 40


@pytest.mark.parametrize("target_cls", [TC25, M56, Risc16])
def test_nesting_with_streams_at_both_levels(target_cls):
    inputs = {"a": [10, 20, 30], "b": [1, 2, 3]}
    program, env = reference(NESTED_WITH_OUTER_STREAM, inputs)
    compiled = RecordCompiler(target_cls()).compile(program)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"] == [16, 26, 36]


def test_baseline_nested_loops():
    inputs = {"a": [10, 20, 30], "b": [1, 2, 3]}
    program, env = reference(NESTED_WITH_OUTER_STREAM, inputs)
    compiled = BaselineCompiler(TC25()).compile(program)
    outputs, _ = run_compiled(compiled, inputs)
    assert outputs["y"] == env["y"]


def test_tc25_reserves_counters_by_depth():
    target = TC25()
    from repro.codegen.asm import CodeSeq, LoopBegin, LoopEnd
    flat = CodeSeq([LoopBegin(count=2, loop_id=0), LoopEnd(loop_id=0)])
    nested = CodeSeq([
        LoopBegin(count=2, loop_id=0),
        LoopBegin(count=2, loop_id=1),
        LoopEnd(loop_id=1),
        LoopEnd(loop_id=0),
    ])
    assert "AR6" in target.stream_registers_for(flat)
    assert "AR6" not in target.stream_registers_for(nested)
    assert "AR7" not in target.stream_registers_for(flat)
    # straight-line programs keep all eight for streams
    assert len(target.stream_registers_for(CodeSeq())) == 8


def test_tc25_timing_holds_for_nested_loops():
    from repro.codegen.timing import predict_cycles
    inputs = {"a": [1, 2, 3, 4]}
    program, _env = reference(NESTED, inputs)
    compiled = RecordCompiler(TC25()).compile(program)
    _outputs, state = run_compiled(compiled, inputs)
    assert predict_cycles(compiled.code).total_cycles == state.cycles
