"""Integration: every kernel x every compiler x every target, bit-exact.

This is the repository's load-bearing correctness statement: compiled
code (retargetable pipeline, target-specific baseline, and the
hand-written references) always computes exactly what the MiniDFL
reference interpreter computes -- outputs *and* persistent state.
"""

import pytest

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels, hand_reference, kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled, run_many
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

FPC = FixedPointContext(16)
KERNELS = [spec.name for spec in all_kernels()]
SEEDS = (0, 1, 2)


def reference_environment(spec, seed):
    program = spec.program
    env = program.initial_environment()
    for key, value in spec.inputs(seed=seed).items():
        env[key] = list(value) if isinstance(value, list) else value
    program.run(env, FPC)
    return env


def check_compiled(spec, compiled, seeds=SEEDS):
    """Batch all seeds through run_many (one decode, N validation runs)."""
    results = run_many(compiled, [spec.inputs(seed=seed) for seed in seeds])
    for seed, (outputs, _state) in zip(seeds, results):
        reference = reference_environment(spec, seed)
        for symbol in spec.program.symbols.values():
            if symbol.role in ("output", "state"):
                assert outputs[symbol.name] == reference[symbol.name], \
                    (spec.name, compiled.compiler, compiled.target.name,
                     symbol.name, seed)
            # delay lines / persistent locals must also match
            if symbol.role == "local" and symbol.is_array:
                assert outputs[symbol.name] == reference[symbol.name], \
                    (spec.name, compiled.compiler, symbol.name)


@pytest.mark.parametrize("name", KERNELS)
def test_record_tc25(name):
    spec = kernel(name)
    compiled = RecordCompiler(TC25()).compile(spec.program)
    check_compiled(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_baseline_tc25(name):
    spec = kernel(name)
    compiled = BaselineCompiler(TC25()).compile(spec.program)
    check_compiled(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_hand_reference_tc25(name):
    spec = kernel(name)
    compiled = hand_reference(name)
    check_compiled(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_record_m56(name):
    spec = kernel(name)
    compiled = RecordCompiler(M56()).compile(spec.program)
    check_compiled(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_record_risc16(name):
    spec = kernel(name)
    compiled = RecordCompiler(Risc16()).compile(spec.program)
    check_compiled(spec, compiled)


@pytest.mark.parametrize("name", KERNELS)
def test_hand_never_larger_than_compilers(name):
    """The 100% line stays the floor of Table 1."""
    spec = kernel(name)
    hand = hand_reference(name)
    record = RecordCompiler(TC25()).compile(spec.program)
    baseline = BaselineCompiler(TC25()).compile(spec.program)
    assert hand.words() <= record.words()
    assert hand.words() <= baseline.words()


def test_streaming_fir_multi_tick():
    """Run the FIR kernel as a stream: persistent delay-line state must
    carry across invocations identically in reference and machine."""
    spec = kernel("fir")
    program = spec.program
    compiled = RecordCompiler(TC25()).compile(program)

    reference = program.initial_environment()
    reference["h"] = spec.inputs(0)["h"]
    machine_state = None
    samples = [100, -200, 300, -400, 500]
    for sample in samples:
        reference["x0"] = sample
        program.run(reference, FPC)
        inputs = {"x0": sample, "h": reference["h"],
                  "x": None}
        # machine keeps its own x in memory; only feed x0 and h
        del inputs["x"]
        outputs, machine_state = run_compiled(
            compiled, inputs, state=machine_state)
        assert outputs["y"] == reference["y"], sample
        assert outputs["x"] == reference["x"], sample
