"""Integration: the ECAD bridge -- RT netlist in, verified binary out."""

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.ise.examples import miniacc_netlist
from repro.ise.extractor import extract
from repro.ise.patterns import NetlistTarget
from repro.sim.harness import run_compiled

FPC = FixedPointContext(16)

STRAIGHTLINE_KERNELS = ["real_update", "complex_multiply",
                        "complex_update", "dot_product"]


@pytest.fixture(scope="module")
def target():
    return NetlistTarget(miniacc_netlist())


@pytest.mark.parametrize("name", STRAIGHTLINE_KERNELS)
def test_straightline_dspstone_on_netlist_target(name, target):
    from repro.dspstone import kernel
    spec = kernel(name)
    compiled = RecordCompiler(target).compile(spec.program)
    for seed in (0, 1):
        reference = spec.program.initial_environment()
        for key, value in spec.inputs(seed=seed).items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, FPC)
        outputs, _ = run_compiled(compiled, spec.inputs(seed=seed))
        for symbol in spec.program.symbols.values():
            if symbol.role == "output":
                assert outputs[symbol.name] == reference[symbol.name]


def test_bridge_pipeline_stages_visible(target):
    """The Fig. 2 chain holds together: netlist -> patterns -> grammar
    -> cover -> code -> simulated, with inspectable artifacts."""
    patterns = extract(target.netlist)
    assert len(patterns) >= 15
    grammar = target.grammar()
    assert len(grammar.rules) >= len(patterns) // 2
    program = compile_dfl("""
program bridge;
input a, b; output y;
begin
  y := (a & b) | 12;
end.
""")
    compiled = RecordCompiler(target).compile(program)
    assert compiled.words() > 0
    outputs, _ = run_compiled(compiled, {"a": 0b1100, "b": 0b1010})
    assert outputs["y"] == (0b1100 & 0b1010) | 12


def test_immediate_width_guard_respected(target):
    """MiniACC immediates are 8 bits: in-range constants are used
    directly and every emitted immediate fits its field."""
    program = compile_dfl("""
program narrow;
input a; output y;
begin
  y := a + 200;
end.
""")
    compiled = RecordCompiler(target).compile(program)
    outputs, _ = run_compiled(compiled, {"a": 1})
    assert outputs["y"] == 201
    from repro.codegen.asm import Imm
    for instr in compiled.code.instructions():
        for operand in instr.operands:
            if isinstance(operand, Imm):
                assert 0 <= operand.value <= 255


def test_wide_constant_is_a_clean_diagnostic(target):
    """The extracted datapath has no way to build a 16-bit constant
    (8-bit immediate field, no shifter): the compiler must say so
    rather than emit a malformed instruction."""
    from repro.codegen.selector import SelectionError
    program = compile_dfl("""
program wide;
input a; output y;
begin
  y := a + 1000;
end.
""")
    with pytest.raises(SelectionError):
        RecordCompiler(target).compile(program)
