"""Unit + property tests for instruction-set extraction.

The central property: replaying an extracted pattern's expression
against the *netlist simulator* with the pattern's justified bit
settings produces exactly the claimed transfer -- for random storage
contents and random operand-field values.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ise.examples import figure3_netlist, miniacc_netlist
from repro.ise.extractor import InstructionPattern, PTree, extract
from repro.rtl.components import InstructionField, Memory, Register
from repro.rtl.netlist import Netlist


@pytest.fixture(scope="module")
def fig3_patterns():
    return extract(figure3_netlist())


@pytest.fixture(scope="module")
def miniacc():
    net = miniacc_netlist()
    return net, extract(net)


def test_figure3_extracts_the_paper_pattern(fig3_patterns):
    descriptions = [p.describe() for p in fig3_patterns]
    target = [d for d in descriptions
              if d.startswith("Reg[bb] := add(Reg[aa], acc)")]
    assert target, descriptions
    # the paper's bit settings: ALU control 0 (add), regfile write on
    pattern = next(p for p in fig3_patterns
                   if p.describe() == target[0])
    assert pattern.bits["c1"] == 0
    assert pattern.bits["we"] == 1
    assert pattern.bits["c2"] == 0     # the accumulator must stay quiet


def test_figure3_pattern_count(fig3_patterns):
    # 2 ALU ops x 2 destinations = 4 single-transfer instructions
    assert len(fig3_patterns) == 4


def test_quiescence_of_other_storages(fig3_patterns):
    for pattern in fig3_patterns:
        if pattern.dest_storage == "Reg":
            assert pattern.bits["c2"] == 0
        else:
            assert pattern.bits["we"] == 0


def test_miniacc_pattern_inventory(miniacc):
    _net, patterns = miniacc
    descriptions = {p.describe().split("   ")[0] for p in patterns}
    assert "dmem[daddr] := acc" in descriptions
    assert "acc := add(acc, dmem[daddr])" in descriptions
    assert "acc := add(acc, #imm)" in descriptions
    assert "acc := dmem[daddr]" in descriptions
    assert "acc := #imm" in descriptions
    assert "acc := neg(acc)" in descriptions


def test_patterns_have_disjoint_enable_semantics(miniacc):
    _net, patterns = miniacc
    for pattern in patterns:
        if pattern.dest_storage == "acc":
            assert pattern.bits["acc_ld"] == 1
            assert pattern.bits["mem_we"] == 0
        else:
            assert pattern.bits["acc_ld"] == 0
            assert pattern.bits["mem_we"] == 1


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_extracted_patterns_match_netlist_simulation(data):
    """Replay: pattern tree semantics == netlist step with its bits."""
    net = miniacc_netlist()
    patterns = extract(net)
    pattern = data.draw(st.sampled_from(patterns))
    storage = net.initial_storage()
    for index in range(len(storage.memories["dmem"])):
        storage.memories["dmem"][index] = data.draw(
            st.integers(min_value=-3000, max_value=3000))
    storage.registers["acc"] = data.draw(
        st.integers(min_value=-3000, max_value=3000))

    # choose operand fields; control fields come from the pattern
    fields = dict(pattern.bits)
    for field in net.instruction_fields():
        if field.name not in fields:
            fields[field.name] = data.draw(
                st.integers(min_value=0,
                            max_value=min(field.max_value, 63)))

    def evaluate(node: PTree) -> int:
        if node.kind == "op":
            values = [evaluate(child) for child in node.children]
            return net.fpc.wrap(net.fpc.apply(node.operator, *values))
        if node.kind == "const":
            return node.value
        if node.kind == "imm":
            return fields[node.field_name]
        if node.kind == "read":
            if node.addr_field is None:
                return storage.registers[node.storage]
            return storage.memories[node.storage][
                fields[node.addr_field]]
        raise AssertionError(node.kind)

    expected = net.fpc.wrap(evaluate(pattern.tree))
    after = net.step(storage, fields)
    if pattern.dest_storage == "acc":
        assert after.registers["acc"] == expected
    else:
        address = fields[pattern.dest_addr_field]
        assert after.memories["dmem"][address] == expected


def test_extraction_skips_computed_write_addresses():
    from repro.rtl.components import Alu, Constant
    from repro.rtl.netlist import Port
    net = Netlist("computed")
    mem = net.add(Memory("m", 8))
    acc = net.add(Register("acc"))
    # address computed by an ALU -> out of scope, pattern skipped
    alu = net.add(Alu("agu", {0: "add"}))
    zero = net.add(Constant("z", 0))
    we = net.add(InstructionField("we", 1))
    ld = net.add(Constant("off", 0))
    net.connect(Port(acc, "out"), Port(alu, "a"))
    net.connect(Port(zero, "out"), Port(alu, "b"))
    net.connect(Port(zero, "out"), Port(alu, "ctl"))
    net.connect(Port(alu, "out"), Port(mem, "addr"))
    net.connect(Port(acc, "out"), Port(mem, "in"))
    net.connect(Port(we, "out"), Port(mem, "we"))
    net.connect(Port(mem, "out"), Port(acc, "in"))
    net.connect(Port(ld, "out"), Port(acc, "load"))
    patterns = extract(net)
    assert all(p.dest_storage != "m" for p in patterns)
