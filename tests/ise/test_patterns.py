"""Unit tests for pattern-to-grammar conversion and NetlistTarget."""

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ir.fixedpoint import FixedPointContext
from repro.ise.examples import miniacc_netlist
from repro.ise.extractor import extract
from repro.ise.patterns import NetlistTarget, patterns_to_grammar
from repro.sim.harness import run_compiled
from repro.sim.machine import SimulationError


@pytest.fixture(scope="module")
def target():
    return NetlistTarget(miniacc_netlist())


def test_grammar_rules_generated(target):
    grammar = target.grammar()
    nonterminals = set(grammar.nonterminals)
    assert "acc" in nonterminals
    assert "stmt" in nonterminals
    # immediate rules carry a width guard derived from the field
    imm_rules = [rule for rule in grammar.rules if "#imm" in rule.name]
    assert imm_rules


def test_register_file_reads_are_skipped_not_fatal():
    from repro.ise.examples import figure3_netlist
    net = figure3_netlist()
    patterns = extract(net)
    grammar = patterns_to_grammar(net, patterns)
    # Reg[] destinations are unsupported by the converter; only the
    # generic mem-ref rule remains.
    assert all(rule.nonterm != "Reg" for rule in grammar.rules)


def test_compile_and_run_straightline(target):
    program = compile_dfl("""
program demo;
input a, b, c;
output y;
begin
  y := (a + b) - c;
end.
""")
    compiled = RecordCompiler(target).compile(program)
    outputs, _state = run_compiled(compiled, {"a": 5, "b": 6, "c": 2})
    assert outputs["y"] == 9


def test_compile_matches_reference_semantics(target):
    source = """
program demo;
input a, b;
output p, q;
begin
  p := a * b + 7;
  q := (a - b) ^ 42;
end.
"""
    program = compile_dfl(source)
    compiled = RecordCompiler(target).compile(program)
    fpc = FixedPointContext(16)
    for a in (-50, 3, 120):
        for b in (-7, 11):
            reference = program.initial_environment()
            reference.update({"a": a, "b": b})
            program.run(reference, fpc)
            outputs, _ = run_compiled(compiled, {"a": a, "b": b})
            assert outputs["p"] == reference["p"]
            assert outputs["q"] == reference["q"]


def test_loops_rejected(target):
    from repro.codegen.addressing import AddressingError
    program = compile_dfl("""
program looped;
input a[4];
output y;
var acc;
begin
  acc := 0;
  for i in 0 .. 3 do
    acc := acc + a[i];
  end;
  y := acc;
end.
""")
    # Rejected either at addressing (no AGU registers) or at loop
    # finalization (no sequencer) -- never silently mis-compiled.
    with pytest.raises((SimulationError, AddressingError)):
        RecordCompiler(target).compile(program)


def test_unknown_opcode_rejected(target):
    from repro.codegen.asm import AsmInstr, CodeSeq
    state = target.initial_state()
    with pytest.raises(SimulationError):
        target.execute(state, AsmInstr(opcode="BOGUS"))
