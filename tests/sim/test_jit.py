"""The source-generating jit tier: equivalence, degradation, caching.

The jit's contract is FastMachine's contract: bit-identical
environments, registers, modes and cycle counts, with graceful
degradation per block -- an opcode without a usable ``@emitter``
template gets an inlined closure call, a template that raises demotes
only its block to the decoded closure runner, and both demotions are
observable in the translation counters but never in results.
"""

import random

import pytest

import repro.cache
from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import all_kernels
from repro.sim.decode import clear_decode_cache
from repro.sim.fastmachine import FastMachine
from repro.sim.harness import load_environment, read_environment
from repro.sim.jit import JitMachine, jit_cache_stats
from repro.sim.machine import Machine, SimulationError
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.model import emitter
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

TIERS = ((Machine, "reference"), (FastMachine, "fast"),
         (JitMachine, "jit"))


def ins(name, *operands, **kwargs):
    return AsmInstr(opcode=name, operands=tuple(operands), **kwargs)


def direct(address):
    return Mem(symbol=f"@{address}", mode="direct", address=address)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_decode_cache()      # also clears the jit caches
    yield
    clear_decode_cache()


def run_all_tiers(target, code, max_steps=2_000_000):
    states = []
    for machine_cls, _name in TIERS:
        states.append(machine_cls(target, max_steps=max_steps).run(code))
    return states


def assert_tiers_identical(target, code):
    reference, fast, jit = run_all_tiers(target, code)
    for other, name in ((fast, "fast"), (jit, "jit")):
        assert other.regs == reference.regs, name
        assert other.mem == reference.mem, name
        assert other.modes == reference.modes, name
        assert other.cycles == reference.cycles, name
    return reference


# ----------------------------------------------------------------------
# Equivalence on real compiled programs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("make_target", [
    TC25, M56, Risc16, lambda: Asip(AsipParams()),
], ids=["tc25", "m56", "risc16", "asip"])
def test_compiled_kernel_identical_across_tiers(make_target):
    target = make_target()
    spec = next(s for s in all_kernels() if s.name == "fir")
    compiled = RecordCompiler(target).compile(spec.program)
    for seed in (0, 1):
        inputs = spec.inputs(seed=seed)
        environments, cycles = [], []
        for machine_cls, _name in TIERS:
            state = target.initial_state()
            load_environment(compiled, inputs, state)
            machine_cls(target).run(compiled.code, state)
            environments.append(read_environment(compiled, state))
            cycles.append(state.cycles)
        assert environments[0] == environments[1] == environments[2]
        assert cycles[0] == cycles[1] == cycles[2]
    stats = jit_cache_stats()
    assert stats["blocks_emitted"] > 0
    assert stats["fallbacks"] == 0


def test_self_loop_blocks_are_fused():
    # A BANZ back-edge to its own block becomes one native while loop.
    code = CodeSeq([
        ins("ZAC"),
        ins("LARK", Reg("AR7"), Imm(9)),
        Label("L"),
        ins("ADDK", Imm(3)),
        ins("BANZ", LabelRef("L"), Reg("AR7"), cycles=2),
        ins("SACL", direct(0)),
    ])
    state = assert_tiers_identical(TC25(), code)
    assert state.mem[0] == 30
    assert jit_cache_stats()["loop_blocks"] >= 1


# ----------------------------------------------------------------------
# Degradation chain: template missing/declining -> inline closure call;
# template broken -> whole block demoted to decoded closures
# ----------------------------------------------------------------------

class DecliningAddTC25(TC25):
    """ADD has no usable template: emit_py declines, the jit inlines a
    call to the instruction's bound @binder closure instead."""

    def __init__(self):
        super().__init__()
        self.name = "tc25-declining-add"

    @emitter("ADD")
    def _emit_add_declines(self, instr, ctx):
        return False


class BrokenAddTC25(TC25):
    """ADD's template raises mid-emission: the surrounding block (only)
    degrades to its decoded FastMachine closures."""

    def __init__(self):
        super().__init__()
        self.name = "tc25-broken-add"

    @emitter("ADD")
    def _emit_add_broken(self, instr, ctx):
        ctx.set_reg("acc", "0xDEAD")      # partial emission, then:
        raise RuntimeError("deliberately broken template")


DEGRADATION_CODE = CodeSeq([
    ins("ZAC"),
    ins("LARK", Reg("AR7"), Imm(4)),
    Label("L"),
    ins("ADDK", Imm(2)),
    ins("ADD", direct(5)),
    ins("BANZ", LabelRef("L"), Reg("AR7"), cycles=2),
    ins("SACL", direct(0)),
])


def test_declining_template_inlines_closure_call():
    state = assert_tiers_identical(DecliningAddTC25(), DEGRADATION_CODE)
    assert state.mem[0] == 10
    stats = jit_cache_stats()
    assert stats["closure_steps"] >= 1      # the ADD slots
    assert stats["blocks_emitted"] >= 1     # blocks stay specialized
    assert stats["blocks_closure"] == 0
    assert stats["fallbacks"] == 0


def test_broken_template_demotes_only_its_block():
    state = assert_tiers_identical(BrokenAddTC25(), DEGRADATION_CODE)
    assert state.mem[0] == 10               # partial emission rolled back
    stats = jit_cache_stats()
    assert stats["blocks_closure"] >= 1     # the ADD block demoted
    assert stats["blocks_emitted"] >= 1     # other blocks still jitted
    assert stats["fallbacks"] == 0          # program-level jit survived


def test_tier_chain_bottoms_out_at_reference():
    # DecodeFallback (a trailing repeat armer) pushes FastMachine --
    # and therefore the jit -- down to the reference interpreter.
    code = CodeSeq([ins("LACK", Imm(3)), ins("SACL", direct(0)),
                    ins("RPTK", Imm(2))])
    state = assert_tiers_identical(TC25(), code)
    assert state.mem[0] == 3


# ----------------------------------------------------------------------
# Error paths must match the reference interpreter exactly
# ----------------------------------------------------------------------

@pytest.mark.parametrize("machine_cls", [m for m, _ in TIERS],
                         ids=[name for _, name in TIERS])
def test_runaway_guard_message_identical(machine_cls):
    code = CodeSeq([Label("L"), ins("B", LabelRef("L"), cycles=2)])
    with pytest.raises(SimulationError,
                       match=r"exceeded 100 steps; runaway loop\?"):
        machine_cls(TC25(), max_steps=100).run(code)


@pytest.mark.parametrize("machine_cls", [m for m, _ in TIERS],
                         ids=[name for _, name in TIERS])
def test_fused_loop_runaway_guard(machine_cls):
    # The budget check inside a fused self-loop, not just the runner.
    code = CodeSeq([
        ins("ZAC"),
        ins("LARK", Reg("AR7"), Imm(500)),
        Label("L"),
        ins("ADDK", Imm(1)),
        ins("BANZ", LabelRef("L"), Reg("AR7"), cycles=2),
        ins("SACL", direct(0)),
    ])
    with pytest.raises(SimulationError,
                       match=r"exceeded 50 steps; runaway loop\?"):
        machine_cls(TC25(), max_steps=50).run(code)


@pytest.mark.parametrize("machine_cls", [m for m, _ in TIERS],
                         ids=[name for _, name in TIERS])
def test_unknown_label_message_identical(machine_cls):
    code = CodeSeq([ins("B", LabelRef("nowhere"), cycles=2)])
    with pytest.raises(SimulationError,
                       match="branch to unknown label 'nowhere'"):
        machine_cls(TC25()).run(code)


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------

def test_persistent_source_cache_round_trip(tmp_path):
    target = TC25()
    spec = next(s for s in all_kernels() if s.name == "dot_product")
    compiled = RecordCompiler(target).compile(spec.program)
    inputs = spec.inputs(seed=0)
    try:
        repro.cache.configure(tmp_path / "cache")

        def run_once():
            state = target.initial_state()
            load_environment(compiled, inputs, state)
            JitMachine(target).run(compiled.code, state)
            return read_environment(compiled, state), state.cycles

        cold = run_once()
        assert jit_cache_stats()["source_cache_misses"] == 1
        clear_decode_cache()                # drop in-process caches only
        warm = run_once()
        stats = jit_cache_stats()
        assert stats["source_cache_hits"] == 1
        assert stats["source_cache_misses"] == 0
        assert warm == cold
    finally:
        repro.cache.configure(None)


def test_clear_decode_cache_clears_jit_cache():
    target = TC25()
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(5)),
                    ins("SACL", direct(0))])
    JitMachine(target).run(code)
    assert jit_cache_stats()["misses"] == 1
    JitMachine(target).run(code)
    assert jit_cache_stats()["hits"] == 1
    clear_decode_cache()
    assert all(value == 0 for value in jit_cache_stats().values())
    JitMachine(target).run(code)
    stats = jit_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 0


# ----------------------------------------------------------------------
# Differential fuzz: jit in the oracle conformance matrix (slow)
# ----------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("target_name",
                         ["tc25", "m56", "risc16", "asip"])
def test_jit_conformance_fuzz(target_name):
    from repro.verify.diff import SIM_NAMES, run_conformance
    assert "jit" in SIM_NAMES
    report = run_conformance(count=10, seed=7,
                             targets=(target_name,))
    assert not report.mismatches, report.summary()


@pytest.mark.slow
@pytest.mark.parametrize("make_target", [
    TC25, M56, Risc16, lambda: Asip(AsipParams()),
], ids=["tc25", "m56", "risc16", "asip"])
def test_jit_differential_fuzz_random_programs(make_target):
    from repro.selftest.generator import _random_program
    target = make_target()
    compiler = RecordCompiler(target)
    rng = random.Random(0x217)
    for index in range(6):
        program = _random_program(rng, index)
        compiled = compiler.compile(program)
        input_names = [name for name, symbol in program.symbols.items()
                       if symbol.role == "input"]
        for _ in range(3):
            inputs = {name: rng.randint(-3000, 3000)
                      for name in input_names}
            results = []
            for machine_cls, _name in TIERS:
                state = target.initial_state()
                load_environment(compiled, inputs, state)
                machine_cls(target).run(compiled.code, state)
                results.append((read_environment(compiled, state),
                                state.cycles))
            assert results[0] == results[1] == results[2]
