"""Unit tests for the simulator core and the harness."""

import pytest

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, LoopBegin, Mem, Reg,
)
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace
from repro.targets.tc25 import TC25


def ins(name, *operands):
    return AsmInstr(opcode=name, operands=tuple(operands))


def direct(address):
    return Mem(symbol=f"@{address}", mode="direct", address=address)


def test_sequential_execution_and_cycles():
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(5)),
                    ins("SACL", direct(0))])
    state = Machine(TC25()).run(code)
    assert state.mem[0] == 5
    assert state.cycles == 3


def test_labels_and_branches():
    code = CodeSeq([
        ins("ZAC"),
        ins("LARK", Reg("AR7"), Imm(2)),
        Label("L"),
        ins("ADDK", Imm(1)),
        AsmInstr(opcode="BANZ",
                 operands=(LabelRef("L"), Reg("AR7")), cycles=2),
        ins("SACL", direct(0)),
    ])
    state = Machine(TC25()).run(code)
    assert state.mem[0] == 3


def test_duplicate_label_rejected():
    code = CodeSeq([Label("L"), Label("L")])
    with pytest.raises(SimulationError):
        Machine(TC25()).run(code)


def test_unknown_branch_target_rejected():
    code = CodeSeq([ins("B", LabelRef("nowhere"))])
    with pytest.raises(SimulationError):
        Machine(TC25()).run(code)


def test_unfinalized_marker_rejected():
    code = CodeSeq([LoopBegin(count=2, loop_id=0)])
    with pytest.raises(SimulationError):
        Machine(TC25()).run(code)


def test_runaway_loop_detected():
    code = CodeSeq([Label("L"), ins("B", LabelRef("L"))])
    with pytest.raises(SimulationError) as excinfo:
        Machine(TC25(), max_steps=100).run(code)
    assert "runaway" in str(excinfo.value)


def test_repeat_applies_to_next_instruction():
    code = CodeSeq([ins("ZAC"), ins("RPTK", Imm(3)),
                    ins("ADDK", Imm(2)), ins("SACL", direct(0))])
    state = Machine(TC25()).run(code)
    assert state.mem[0] == 8


def test_trace_records_instructions():
    trace = Trace(limit=10)
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(1))])
    Machine(TC25()).run(code, trace=trace)
    assert len(trace) == 2
    assert "ZAC" in trace.render()


def test_trace_bounded():
    trace = Trace(limit=2)
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(1)),
                    ins("ADDK", Imm(1)), ins("ADDK", Imm(1))])
    Machine(TC25()).run(code, trace=trace)
    assert len(trace.entries) == 2
    assert trace.dropped == 2
    assert "dropped" in trace.render()


def test_state_memory_bounds_checked():
    state = MachineState()
    with pytest.raises(SimulationError):
        state.load(99999)
    with pytest.raises(SimulationError):
        state.store(-1, 0)


def test_state_register_lookup_error():
    state = MachineState()
    with pytest.raises(SimulationError):
        state.reg("nope")
