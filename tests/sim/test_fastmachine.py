"""Edge-case tests exercised against BOTH simulators.

Every behaviour here is asserted for the reference ``Machine`` and the
translation-caching ``FastMachine``: the fast path is only fast, never
different.
"""

import pytest

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, LoopBegin, Mem, Reg,
)
from repro.sim.decode import clear_decode_cache
from repro.sim.fastmachine import FastMachine
from repro.sim.machine import Machine, SimulationError
from repro.sim.trace import Trace
from repro.targets.m56 import M56
from repro.targets.tc25 import TC25

BOTH = pytest.mark.parametrize("machine_class", [Machine, FastMachine],
                               ids=["reference", "fast"])


def ins(name, *operands, **kwargs):
    return AsmInstr(opcode=name, operands=tuple(operands), **kwargs)


def direct(address):
    return Mem(symbol=f"@{address}", mode="direct", address=address)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


@BOTH
def test_sequential_execution_and_cycles(machine_class):
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(5)),
                    ins("SACL", direct(0))])
    state = machine_class(TC25()).run(code)
    assert state.mem[0] == 5
    assert state.cycles == 3


@BOTH
def test_branch_loop(machine_class):
    code = CodeSeq([
        ins("ZAC"),
        ins("LARK", Reg("AR7"), Imm(2)),
        Label("L"),
        ins("ADDK", Imm(1)),
        ins("BANZ", LabelRef("L"), Reg("AR7"), cycles=2),
        ins("SACL", direct(0)),
    ])
    state = machine_class(TC25()).run(code)
    assert state.mem[0] == 3


@BOTH
def test_nested_m56_do_loops(machine_class):
    code = CodeSeq([
        ins("CLR"),
        ins("DO", Imm(2), words=2, cycles=2),
        Label("D0"),
        ins("DO", Imm(3), words=2, cycles=2),
        Label("D1"),
        ins("ADD", Imm(1)),
        ins("LOOPEND", LabelRef("D1"), words=0, cycles=0),
        ins("ADD", Imm(10)),
        ins("LOOPEND", LabelRef("D0"), words=0, cycles=0),
        ins("MOVE", direct(0), Reg("a")),
    ])
    state = machine_class(M56()).run(code)
    assert state.mem[0] == 2 * (3 * 1 + 10)
    assert state.loop_stack == []


@BOTH
def test_repeat_count_zero_runs_body_once(machine_class):
    # RPTK n repeats the next instruction n+1 times; n == 0 is one run.
    code = CodeSeq([ins("ZAC"), ins("RPTK", Imm(0)),
                    ins("ADDK", Imm(2)), ins("SACL", direct(0))])
    state = machine_class(TC25()).run(code)
    assert state.mem[0] == 2


@BOTH
def test_repeat_cycles_match(machine_class):
    code = CodeSeq([ins("RPTK", Imm(3)), ins("ADDK", Imm(2)),
                    ins("SACL", direct(0))])
    state = machine_class(TC25()).run(code)
    assert state.mem[0] == 8
    assert state.cycles == 1 + 4 + 1     # armer + 4 repeats + store


@BOTH
def test_branch_to_self_trips_runaway_guard(machine_class):
    code = CodeSeq([Label("L"), ins("B", LabelRef("L"), cycles=2)])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25(), max_steps=100).run(code)
    assert "runaway" in str(excinfo.value)


@BOTH
def test_huge_hardware_repeat_counts_against_budget(machine_class):
    # Regression: a single instruction with a huge repeat count must
    # trip max_steps, not bypass the guard by counting as one step.
    code = CodeSeq([ins("RPTK", Imm(50_000)), ins("ADDK", Imm(1))])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25(), max_steps=100).run(code)
    assert "runaway" in str(excinfo.value)


@BOTH
def test_branch_to_unknown_label(machine_class):
    code = CodeSeq([ins("B", LabelRef("nowhere"), cycles=2)])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25()).run(code)
    assert "unknown label" in str(excinfo.value)


@BOTH
def test_unfinalized_item_rejected(machine_class):
    code = CodeSeq([LoopBegin(count=2, loop_id=0)])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25()).run(code)
    assert "unfinalized" in str(excinfo.value)


@BOTH
def test_out_of_range_address(machine_class):
    code = CodeSeq([ins("ZAC"), ins("SACL", direct(5000))])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25()).run(code)
    assert "out of range" in str(excinfo.value)


@BOTH
def test_unknown_opcode_raises_when_executed(machine_class):
    code = CodeSeq([ins("XYZZY")])
    with pytest.raises(SimulationError) as excinfo:
        machine_class(TC25()).run(code)
    assert "unknown opcode" in str(excinfo.value)


@BOTH
def test_unknown_opcode_behind_taken_branch_is_harmless(machine_class):
    # The reference interpreter only faults on opcodes it executes; the
    # fast simulator defers its decode error to run time to match.
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(7)),
                    ins("B", LabelRef("done"), cycles=2),
                    ins("XYZZY"),
                    Label("done"), ins("SACL", direct(0))])
    state = machine_class(TC25()).run(code)
    assert state.mem[0] == 7


def test_fastmachine_trace_falls_back_to_reference():
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(1))])
    reference_trace, fast_trace = Trace(limit=10), Trace(limit=10)
    ref_state = Machine(TC25()).run(code, trace=reference_trace)
    fast_state = FastMachine(TC25()).run(code, trace=fast_trace)
    assert len(fast_trace) == 2
    assert fast_trace.render() == reference_trace.render()
    assert fast_state.cycles == ref_state.cycles


def test_traced_run_renders_each_instruction_once(monkeypatch):
    calls = []
    original = AsmInstr.render

    def counting(self):
        calls.append(self.opcode)
        return original(self)

    monkeypatch.setattr(AsmInstr, "render", counting)
    code = CodeSeq([ins("RPTK", Imm(4)), ins("ADDK", Imm(1))])
    Machine(TC25()).run(code, trace=Trace(limit=100))
    # 5 trace entries for the repeated ADDK, but only one render of it
    assert calls.count("ADDK") == 1


def test_fastmachine_matches_reference_state_exactly():
    code = CodeSeq([
        ins("ZAC"),
        ins("LARK", Reg("AR3"), Imm(4)),
        Label("L"),
        ins("ADDK", Imm(3)),
        ins("BANZ", LabelRef("L"), Reg("AR3"), cycles=2),
        ins("SACL", direct(1)),
    ])
    ref_state = Machine(TC25()).run(code)
    fast_state = FastMachine(TC25()).run(code)
    assert ref_state.mem == fast_state.mem
    assert ref_state.cycles == fast_state.cycles
    assert ref_state.modes == fast_state.modes
    scratch = {"mac_idx", "rptc"}
    assert {k: v for k, v in ref_state.regs.items()
            if k not in scratch} \
        == {k: v for k, v in fast_state.regs.items()
            if k not in scratch}
