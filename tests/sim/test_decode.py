"""Unit tests for the translation-caching decoder."""

import pytest

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, LoopBegin, Mem, Reg,
)
from repro.sim.decode import (
    DecodeFallback, clear_decode_cache, decode, decode_cache_stats,
    decode_cached,
)
from repro.sim.machine import SimulationError
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def ins(name, *operands):
    return AsmInstr(opcode=name, operands=tuple(operands))


def direct(address):
    return Mem(symbol=f"@{address}", mode="direct", address=address)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


def test_semantics_registry_feeds_dispatch_table():
    target = TC25()
    table = target.dispatch_table()
    assert "LAC" in table and "SACL" in table and "BANZ" in table
    assert "B" in target._BRANCH_OPCODES
    assert "BANZ" in target._BRANCH_OPCODES
    assert "LAC" not in target._BRANCH_OPCODES


def test_straightline_code_is_one_block():
    code = CodeSeq([ins("ZAC"), ins("ADDK", Imm(5)),
                    ins("SACL", direct(0))])
    decoded = decode(TC25(), code)
    # one real block plus the empty terminal block
    assert len(decoded.blocks) == 2
    block = decoded.blocks[0]
    assert len(block.body) == 3
    assert block.branch is None
    assert block.cycles == 3 and block.steps == 3


def test_labels_and_branches_split_blocks():
    code = CodeSeq([
        ins("ZAC"),
        Label("L"),
        ins("ADDK", Imm(1)),
        AsmInstr(opcode="BANZ",
                 operands=(LabelRef("L"), Reg("AR7")), cycles=2),
        ins("SACL", direct(0)),
    ])
    decoded = decode(TC25(), code)
    # blocks: [ZAC], [ADDK + BANZ branch], [SACL], terminal
    assert len(decoded.blocks) == 4
    assert decoded.labels["L"] == 1
    assert decoded.blocks[1].branch is not None
    assert decoded.blocks[1].steps == 2


def test_rptk_fuses_with_static_cycles():
    code = CodeSeq([ins("RPTK", Imm(3)), ins("ADDK", Imm(2))])
    decoded = decode(TC25(), code)
    block = decoded.blocks[0]
    assert len(block.body) == 1          # the fused pair is one step
    assert block.steps == 5              # 1 armer + 4 iterations
    assert block.cycles == 1 + 4 * 1


def test_rptk_as_last_instruction_falls_back():
    code = CodeSeq([ins("ZAC"), ins("RPTK", Imm(3))])
    with pytest.raises(DecodeFallback):
        decode(TC25(), code)
    assert decode_cached(TC25(), code) is None


def test_rptk_of_branch_falls_back():
    code = CodeSeq([Label("L"), ins("RPTK", Imm(3)),
                    ins("B", LabelRef("L"))])
    with pytest.raises(DecodeFallback):
        decode(TC25(), code)


def test_label_at_end_resolves_to_terminal_block():
    code = CodeSeq([ins("B", LabelRef("done")), Label("done")])
    decoded = decode(TC25(), code)
    terminal = decoded.labels["done"]
    assert decoded.blocks[terminal].body == ()
    assert decoded.blocks[terminal].next is None


def test_malformed_code_raises_simulation_error():
    with pytest.raises(SimulationError):
        decode(TC25(), CodeSeq([Label("L"), Label("L")]))
    with pytest.raises(SimulationError):
        decode(TC25(), CodeSeq([LoopBegin(count=2, loop_id=0)]))


def test_cache_returns_same_object_per_target_and_code():
    target = TC25()
    code = CodeSeq([ins("ZAC")])
    first = decode_cached(target, code)
    second = decode_cached(target, code)
    assert first is second
    stats = decode_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_cache_is_keyed_on_target_instance():
    code = CodeSeq([ins("ZAC")])
    first = decode_cached(TC25(), code)
    second = decode_cached(TC25(), code)
    assert first is not second
    assert decode_cache_stats()["misses"] == 2


def test_cache_caches_fallback_verdicts():
    target = TC25()
    code = CodeSeq([ins("RPTK", Imm(3))])
    assert decode_cached(target, code) is None
    assert decode_cached(target, code) is None
    stats = decode_cache_stats()
    assert stats["fallbacks"] == 1       # decoded once, verdict cached
    assert stats["hits"] == 1


def test_clear_decode_cache_resets_stats():
    target = TC25()
    code = CodeSeq([ins("ZAC")])
    decode_cached(target, code)
    clear_decode_cache()
    assert decode_cache_stats() == {"hits": 0, "misses": 0,
                                    "fallbacks": 0}
    decode_cached(target, code)
    assert decode_cache_stats()["misses"] == 1


def test_risc_registry_decodes_too():
    target = Risc16()
    code = CodeSeq([ins("LI", Reg("r1"), Imm(7)),
                    ins("SW", Reg("r1"), direct(0))])
    decoded = decode(target, code)
    assert len(decoded.blocks[0].body) == 2
