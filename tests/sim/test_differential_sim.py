"""Differential fuzzing: fast simulator vs. reference, random programs.

Random straight-line expression programs (the selftest generator's
corpus) are compiled by the RECORD pipeline for every target family and
executed by both simulators; environments, memory, cycle counts, modes
and architectural registers must agree exactly.

``mac_idx`` and ``rptc`` are excluded from the register comparison:
they are dispatch-internal scratch (the reference interpreter clears
them eagerly on every step, the fast simulator only when an instruction
reads them) and no instruction can observe the difference.
"""

import random

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.selftest.generator import _random_program
from repro.sim.decode import clear_decode_cache, decode_cache_stats
from repro.sim.fastmachine import FastMachine
from repro.sim.harness import load_environment, read_environment
from repro.sim.machine import Machine
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

SCRATCH_REGS = {"mac_idx", "rptc"}
PROGRAMS_PER_TARGET = 6
INPUT_SETS_PER_PROGRAM = 3


def _architectural_regs(state):
    return {name: value for name, value in state.regs.items()
            if name not in SCRATCH_REGS}


@pytest.mark.parametrize("make_target", [
    TC25, M56, Risc16, lambda: Asip(AsipParams()),
], ids=["tc25", "m56", "risc16", "asip"])
def test_random_programs_agree(make_target):
    target = make_target()
    rng = random.Random(0xD1FF)
    compiler = RecordCompiler(target)
    clear_decode_cache()
    for index in range(PROGRAMS_PER_TARGET):
        program = _random_program(rng, index)
        compiled = compiler.compile(program)
        input_names = [name for name, symbol in program.symbols.items()
                       if symbol.role == "input"]
        for _ in range(INPUT_SETS_PER_PROGRAM):
            inputs = {name: rng.randint(-3000, 3000)
                      for name in input_names}

            ref_state = target.initial_state()
            load_environment(compiled, inputs, ref_state)
            Machine(target).run(compiled.code, ref_state)

            fast_state = target.initial_state()
            load_environment(compiled, inputs, fast_state)
            FastMachine(target).run(compiled.code, fast_state)

            context = (target.name, program.name, inputs)
            assert read_environment(compiled, ref_state) \
                == read_environment(compiled, fast_state), context
            assert ref_state.cycles == fast_state.cycles, context
            assert ref_state.mem == fast_state.mem, context
            assert ref_state.modes == fast_state.modes, context
            assert _architectural_regs(ref_state) \
                == _architectural_regs(fast_state), context
    stats = decode_cache_stats()
    assert stats["misses"] == PROGRAMS_PER_TARGET
    assert stats["hits"] == \
        PROGRAMS_PER_TARGET * (INPUT_SETS_PER_PROGRAM - 1)


@pytest.mark.parametrize("make_target", [
    TC25, M56, Risc16, lambda: Asip(AsipParams()),
], ids=["tc25", "m56", "risc16", "asip"])
def test_loop_programs_agree_on_cycles(make_target):
    """The progen grammar adds loops (repeat/hardware-loop paths the
    straight-line corpus never exercises); both simulators must agree
    on memory *and* cycle counts there too."""
    from repro.verify.progen import generate_inputs, generate_program

    target = make_target()
    compiler = RecordCompiler(target)
    for seed in range(4):
        rng = random.Random(seed)
        program = generate_program(rng, seed)
        compiled = compiler.compile(program)
        inputs = generate_inputs(rng, program)

        ref_state = target.initial_state()
        load_environment(compiled, inputs, ref_state)
        Machine(target).run(compiled.code, ref_state)

        fast_state = target.initial_state()
        load_environment(compiled, inputs, fast_state)
        FastMachine(target).run(compiled.code, fast_state)

        context = (target.name, program.name, seed)
        assert read_environment(compiled, ref_state) \
            == read_environment(compiled, fast_state), context
        assert ref_state.cycles == fast_state.cycles, context
        assert ref_state.mem == fast_state.mem, context


@pytest.mark.slow
def test_fuzz_corpus_cycle_agreement():
    """Wider sweep (slow, opt-in): the full conformance fuzz corpus,
    every target, cycle-exact simulator agreement."""
    from repro.verify.progen import generate_inputs, generate_program

    for make_target in (TC25, M56, Risc16, lambda: Asip(AsipParams())):
        target = make_target()
        compiler = RecordCompiler(target)
        for seed in range(20):
            rng = random.Random(seed)
            program = generate_program(rng, seed)
            compiled = compiler.compile(program)
            for _ in range(2):
                inputs = generate_inputs(rng, program)

                ref_state = target.initial_state()
                load_environment(compiled, inputs, ref_state)
                Machine(target).run(compiled.code, ref_state)

                fast_state = target.initial_state()
                load_environment(compiled, inputs, fast_state)
                FastMachine(target).run(compiled.code, fast_state)

                context = (target.name, program.name, seed)
                assert ref_state.cycles == fast_state.cycles, context
                assert ref_state.mem == fast_state.mem, context
