"""Unit tests for the environment-level simulation harness."""

import pytest

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.sim.harness import (
    cycles_of, load_environment, read_environment, run_compiled,
    run_many,
)
from repro.targets.tc25 import TC25

SRC = """
program echo;
input x, v[3];
output y, w[3];
begin
  y := x;
  w[0] := v[2];
  w[1] := v[1];
  w[2] := v[0];
end.
"""


@pytest.fixture()
def compiled():
    return RecordCompiler(TC25()).compile(compile_dfl(SRC))


def test_roundtrip_scalars_and_arrays(compiled):
    outputs, state = run_compiled(compiled,
                                  {"x": 42, "v": [1, 2, 3]})
    assert outputs["y"] == 42
    assert outputs["w"] == [3, 2, 1]
    assert state.cycles > 0


def test_inputs_are_wrapped_to_word_width(compiled):
    outputs, _ = run_compiled(compiled, {"x": 0x18000, "v": [0, 0, 0]})
    assert outputs["y"] == compiled.target.fpc.wrap(0x18000)


def test_array_length_validated(compiled):
    with pytest.raises(ValueError):
        run_compiled(compiled, {"x": 0, "v": [1, 2]})


def test_scalar_for_array_rejected(compiled):
    with pytest.raises(ValueError):
        run_compiled(compiled, {"x": [1, 2], "v": [0, 0, 0]})


def test_state_persists_across_invocations(compiled):
    # run twice on the same machine state: second run sees first's
    # memory (inputs overwrite, but untouched cells persist)
    outputs, state = run_compiled(compiled, {"x": 1, "v": [9, 9, 9]})
    outputs, state = run_compiled(compiled, {"x": 2, "v": [1, 2, 3]},
                                  state=state)
    assert outputs["y"] == 2
    assert outputs["w"] == [3, 2, 1]


def test_cycles_of(compiled):
    assert cycles_of(compiled, {"x": 1, "v": [1, 2, 3]}) == \
        cycles_of(compiled, {"x": 5, "v": [4, 5, 6]})


def test_fast_sim_opt_out_is_identical(compiled):
    env = {"x": 7, "v": [4, 5, 6]}
    fast_outputs, fast_state = run_compiled(compiled, env)
    ref_outputs, ref_state = run_compiled(compiled, env,
                                          fast_sim=False)
    assert fast_outputs == ref_outputs
    assert fast_state.cycles == ref_state.cycles
    assert cycles_of(compiled, env) == cycles_of(compiled, env,
                                                 fast_sim=False)


def test_run_many_matches_individual_runs(compiled):
    envs = [{"x": k, "v": [k, k + 1, k + 2]} for k in range(5)]
    batched = run_many(compiled, envs)
    assert len(batched) == len(envs)
    for env, (outputs, state) in zip(envs, batched):
        expected_outputs, expected_state = run_compiled(compiled, env)
        assert outputs == expected_outputs
        assert state.cycles == expected_state.cycles


def test_run_many_reference_mode(compiled):
    envs = [{"x": 1, "v": [1, 2, 3]}, {"x": 2, "v": [4, 5, 6]}]
    assert [outputs for outputs, _ in run_many(compiled, envs)] \
        == [outputs for outputs, _ in run_many(compiled, envs,
                                               fast_sim=False)]


def test_missing_table_input_rejected():
    fir = compile_dfl("""
program fir4;
const N = 4;
input x[N], h[N];
output y;
var acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + h[i]*x[i];
  end;
  y := acc;
end.
""")
    compiled = RecordCompiler(TC25()).compile(fir)
    assert compiled.pmem_tables
    with pytest.raises(ValueError):
        table_symbol = compiled.pmem_tables[0].symbol
        inputs = {"x": [1] * 4, "h": [1] * 4}
        del inputs[table_symbol]
        run_compiled(compiled, inputs)
