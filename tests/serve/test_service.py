"""The compile service, in-process: dedup layers, identity, failure.

``CompileService.handle`` is exercised without sockets (serial farm,
no process pool), which keeps these tests fast and makes the dedup
ladder directly observable: the first request for an artifact is
``farm``, concurrent duplicates are ``coalesced``, later repeats are
``cache`` -- and every one of them returns byte-identical results to
a direct ``repro.api`` call.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.cache
from repro.serve.server import CompileService, canonical_target_name


@pytest.fixture()
def service_factory(tmp_path):
    """Build serial (poolless) services on a private cache dir; undo
    the service's global cache configuration afterwards."""
    previous = repro.cache._ACTIVE
    services = []

    def build(**kwargs):
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("use_pool", False)
        kwargs.setdefault("window", 0.005)
        service = CompileService(**kwargs)
        services.append(service)
        return service

    yield build
    repro.cache._ACTIVE = previous


def run(coroutine):
    return asyncio.run(coroutine)


def compile_payload(request_id, kernel="real_update", target="tc25",
                    **extra):
    return {"id": request_id, "op": "compile", "kernel": kernel,
            "target": target, "compiler": "record", **extra}


# ----------------------------------------------------------------------
# The dedup ladder: farm -> coalesced -> cache
# ----------------------------------------------------------------------

def test_first_request_farms_then_repeats_hit_cache(service_factory):
    async def scenario():
        service = service_factory()
        try:
            first = await service.handle(compile_payload(1))
            again = await service.handle(compile_payload(2))
            return first, again
        finally:
            await service.close()

    first, again = run(scenario())
    assert first["ok"] and first["served_by"] == "farm"
    assert again["ok"] and again["served_by"] == "cache"
    assert again["result"] == first["result"]
    assert again["key"] == first["key"]


def test_concurrent_duplicates_coalesce_onto_one_compile(
        service_factory):
    async def scenario():
        service = service_factory()
        try:
            responses = await asyncio.gather(*[
                service.handle(compile_payload(index))
                for index in range(5)])
            return responses, service.stats
        finally:
            await service.close()

    responses, stats = run(scenario())
    served = sorted(response["served_by"] for response in responses)
    assert served.count("farm") == 1
    assert served.count("coalesced") + served.count("cache") == 4
    assert stats.coalesced + stats.cache_hits == 4
    listings = {response["result"]["listing"]
                for response in responses}
    assert len(listings) == 1


def test_asip_alias_keys_match_worker_store(service_factory):
    """Regression: the request alias 'asip' resolves to a decorated
    target name; the hot path must key on the resolved name or asip
    cells recompile forever (the other aliases match by accident)."""
    assert canonical_target_name("asip") != "asip"
    assert canonical_target_name("tc25") == "tc25"

    async def scenario():
        service = service_factory()
        try:
            first = await service.handle(
                compile_payload(1, target="asip"))
            again = await service.handle(
                compile_payload(2, target="asip"))
            return first, again
        finally:
            await service.close()

    first, again = run(scenario())
    assert first["served_by"] == "farm"
    assert again["served_by"] == "cache"


def test_kernel_and_spec_forms_share_one_artifact(service_factory):
    """The same program arriving by registry name and by serialized
    spec must land on the same content key (second form is hot)."""
    from repro.dspstone import kernel
    from repro.verify.corpus import program_to_spec
    spec = program_to_spec(kernel("real_update").program)

    async def scenario():
        service = service_factory()
        try:
            by_name = await service.handle(compile_payload(1))
            by_spec = await service.handle({
                "id": 2, "op": "compile", "program": spec,
                "target": "tc25", "compiler": "record"})
            return by_name, by_spec
        finally:
            await service.close()

    by_name, by_spec = run(scenario())
    assert by_name["served_by"] == "farm"
    assert by_spec["served_by"] == "cache"
    assert by_spec["result"]["listing"] == \
        by_name["result"]["listing"]


# ----------------------------------------------------------------------
# Identity against the direct API
# ----------------------------------------------------------------------

def test_compile_and_simulate_match_direct_api(service_factory):
    from repro.api import compile_kernel
    from repro.dspstone import kernel
    direct = compile_kernel("fir", target="m56")
    inputs = kernel("fir").inputs(seed=3)
    direct_outputs, direct_cycles = direct.run(inputs)

    async def scenario():
        service = service_factory()
        try:
            compiled = await service.handle(
                compile_payload(1, kernel="fir", target="m56"))
            simulated = await service.handle({
                "id": 2, "op": "simulate", "kernel": "fir",
                "target": "m56", "compiler": "record",
                "inputs": inputs, "sim": "fast"})
            return compiled, simulated
        finally:
            await service.close()

    compiled, simulated = run(scenario())
    assert compiled["result"]["listing"] == direct.listing()
    assert simulated["result"]["outputs"] == direct_outputs
    assert simulated["result"]["cycles"] == direct_cycles


def test_verify_op_reports_clean_matrix(service_factory):
    from repro.dspstone import kernel
    from repro.verify.corpus import program_to_spec
    spec = program_to_spec(kernel("real_update").program)
    inputs = kernel("real_update").inputs(seed=1)

    async def scenario():
        service = service_factory()
        try:
            first, second = await asyncio.gather(
                service.handle({"id": 1, "op": "verify",
                                "program": spec,
                                "input_sets": [inputs],
                                "targets": ["tc25", "risc16"]}),
                service.handle({"id": 2, "op": "verify",
                                "program": spec,
                                "input_sets": [inputs],
                                "targets": ["tc25", "risc16"]}))
            return first, second
        finally:
            await service.close()

    first, second = run(scenario())
    assert first["ok"] and first["result"]["ok"]
    assert first["result"]["cells"] > 0
    assert first["result"]["mismatches"] == []
    # identical concurrent verifies coalesce on the verify key
    served = sorted((first["served_by"], second["served_by"]))
    assert served == ["coalesced", "farm"]
    assert second["result"] == first["result"]


# ----------------------------------------------------------------------
# Cancellation: a dead client must not poison shared work
# ----------------------------------------------------------------------

def test_cancelled_owner_leaves_peers_and_store_intact(
        service_factory):
    """The first requester disconnects mid-compile: the coalesced
    peer still gets its artifact and the store still goes hot."""
    async def scenario():
        service = service_factory()
        try:
            owner = asyncio.ensure_future(
                service.handle(compile_payload(1, kernel="fir")))
            for _ in range(400):
                if service._artifact_inflight:
                    break
                await asyncio.sleep(0.005)
            assert service._artifact_inflight, "owner never registered"
            peer = asyncio.ensure_future(
                service.handle(compile_payload(2, kernel="fir")))
            await asyncio.sleep(0.01)
            owner.cancel()
            peer_response = await peer
            # The cancel may land too late (the compile finished in
            # the same loop tick); both outcomes are legal -- what
            # matters is that the peer and the store are unharmed.
            try:
                owner_response = await owner
                assert owner_response["ok"]
            except asyncio.CancelledError:
                pass
            repeat = await service.handle(
                compile_payload(3, kernel="fir"))
            return peer_response, repeat
        finally:
            await service.close()

    peer_response, repeat = run(scenario())
    assert peer_response["ok"]
    assert peer_response["served_by"] in ("coalesced", "cache")
    assert repeat["served_by"] == "cache"


def test_cancelled_waiter_does_not_cancel_shared_compile(
        service_factory):
    """A coalesced waiter disconnects: the owner and the artifact are
    unaffected (the shield points the right way)."""
    async def scenario():
        service = service_factory()
        try:
            owner = asyncio.ensure_future(
                service.handle(compile_payload(1, kernel="fir")))
            for _ in range(400):
                if service._artifact_inflight:
                    break
                await asyncio.sleep(0.005)
            waiter = asyncio.ensure_future(
                service.handle(compile_payload(2, kernel="fir")))
            await asyncio.sleep(0.01)
            waiter.cancel()
            owner_response = await owner
            try:
                waiter_response = await waiter
                assert waiter_response["ok"]   # cancel landed too late
            except asyncio.CancelledError:
                pass
            return owner_response
        finally:
            await service.close()

    owner_response = run(scenario())
    assert owner_response["ok"]
    assert owner_response["served_by"] == "farm"


# ----------------------------------------------------------------------
# Failure envelopes
# ----------------------------------------------------------------------

def test_errors_become_envelopes_and_service_survives(
        service_factory):
    async def scenario():
        service = service_factory()
        try:
            bad_protocol = await service.handle({"op": "frobnicate",
                                                 "id": 1})
            bad_kernel = await service.handle(
                compile_payload(2, kernel="no_such_kernel"))
            alive = await service.handle({"id": 3, "op": "ping"})
            return bad_protocol, bad_kernel, alive, service.stats
        finally:
            await service.close()

    bad_protocol, bad_kernel, alive, stats = run(scenario())
    assert not bad_protocol["ok"]
    assert bad_protocol["error_type"] == "ProtocolError"
    assert not bad_kernel["ok"]
    assert bad_kernel["id"] == 2
    assert alive["ok"] and alive["result"] == {"pong": True}
    assert stats.errors == 2


def test_stats_snapshot_has_dedup_counters(service_factory):
    async def scenario():
        service = service_factory()
        try:
            await service.handle(compile_payload(1))
            await service.handle(compile_payload(2))
            return service.stats_json()
        finally:
            await service.close()

    snapshot = run(scenario())
    assert snapshot["pool"] == "serial"
    assert snapshot["cache_hits"] == 1
    assert snapshot["requests"] == 2
    assert snapshot["inflight"] == 0
    assert "compile_batcher" in snapshot and "cache" in snapshot
