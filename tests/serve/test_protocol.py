"""The wire protocol: strict on the way in, stable on the way out.

``parse_request`` is the server's only line of defense against
malformed input -- everything past it assumes a validated request --
so these tests pin both the acceptance surface (every documented shape
parses) and the rejection surface (every malformation raises
``ProtocolError`` with a message naming the offending field).
"""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    ProtocolError, error_response, ok_response, parse_request,
    verify_key,
)


# ----------------------------------------------------------------------
# Acceptance
# ----------------------------------------------------------------------

def test_minimal_ops_parse_without_program():
    for op in ("ping", "stats", "shutdown"):
        request = parse_request({"id": 1, "op": op})
        assert request.op == op
        assert request.id == 1


def test_compile_by_kernel_defaults():
    request = parse_request({"id": "a", "op": "compile",
                             "kernel": "fir"})
    assert request.kernel == "fir"
    assert request.target == "tc25"
    assert request.compiler == "record"


def test_compile_by_source_and_spec():
    by_source = parse_request({"op": "compile", "source": "x = 1 + 2"})
    assert by_source.source == "x = 1 + 2"
    by_spec = parse_request({"op": "compile", "program": {"name": "p"}})
    assert by_spec.program_spec == {"name": "p"}


def test_simulate_carries_inputs_and_tier():
    request = parse_request({"op": "simulate", "kernel": "fir",
                             "inputs": {"x": [1, 2]}, "sim": "fast"})
    assert request.inputs == {"x": [1, 2]}
    assert request.sim == "fast"


def test_verify_carries_input_sets_and_targets():
    request = parse_request({"op": "verify", "program": {"name": "p"},
                             "input_sets": [{"x": 1}],
                             "targets": ["tc25", "asip"]})
    assert request.input_sets == [{"x": 1}]
    assert request.targets == ("tc25", "asip")


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------

@pytest.mark.parametrize("payload,needle", [
    ("not a dict", "JSON object"),
    ({"op": "frobnicate"}, "unknown op"),
    ({"op": "compile"}, "exactly one of"),
    ({"op": "compile", "kernel": "fir", "source": "x=1"},
     "exactly one of"),
    ({"op": "compile", "kernel": 42}, "'kernel'"),
    ({"op": "compile", "kernel": "fir", "compiler": "gcc"},
     "unknown compiler"),
    ({"op": "compile", "kernel": "fir", "target": "z80"},
     "unknown target"),
    ({"op": "compile", "source": "x=1", "compiler": "hand"}, "hand"),
    ({"op": "simulate", "kernel": "fir", "sim": "warp"},
     "unknown sim tier"),
    ({"op": "simulate", "kernel": "fir", "inputs": [1, 2]},
     "'inputs'"),
    ({"op": "verify", "program": {}, "input_sets": "nope"},
     "'input_sets'"),
    ({"op": "verify", "program": {}, "targets": ["z80"]},
     "unknown target"),
], ids=lambda value: str(value)[:40])
def test_malformed_requests_raise(payload, needle):
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(payload)
    assert needle in str(excinfo.value)


# ----------------------------------------------------------------------
# Envelopes and keys
# ----------------------------------------------------------------------

def test_response_envelopes_round_trip():
    request = parse_request({"id": 7, "op": "compile", "kernel": "fir"})
    ok = ok_response(request, {"x": 1}, "cache",
                     {"dedup": 0.001234567}, key="k")
    assert ok["ok"] and ok["id"] == 7 and ok["served_by"] == "cache"
    assert ok["timings"]["dedup"] == round(0.001234567, 6)
    err = error_response(7, "boom", "ServeError", op="compile")
    assert not err["ok"] and err["error_type"] == "ServeError"


def test_verify_key_is_content_addressed():
    from repro.dspstone import kernel
    program = kernel("fir").program
    base = {"op": "verify", "program": {"ignored": True},
            "input_sets": [{"x": 1}], "targets": ["tc25", "m56"]}
    first = parse_request(dict(base))
    again = parse_request(dict(base))
    assert verify_key(first, program) == verify_key(again, program)
    other_inputs = parse_request({**base, "input_sets": [{"x": 2}]})
    assert verify_key(other_inputs, program) != verify_key(first,
                                                           program)
    other_targets = parse_request({**base, "targets": ["tc25"]})
    assert verify_key(other_targets, program) != verify_key(first,
                                                            program)
