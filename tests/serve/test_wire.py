"""The NDJSON wire: a real server on a real socket, real clients.

One live server per test module (serial farm, private cache dir);
clients connect over TCP exactly as ``python -m repro serve`` users
would.  Covers pipelining with completion-order responses, dedup
observable from outside, abrupt client disconnects, and shutdown.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

import repro.cache
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import CompileService, ReproServer


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """A serving thread with its own event loop; yields (host, port)."""
    tmp_path = tmp_path_factory.mktemp("serve-wire")
    previous = repro.cache._ACTIVE
    ready = threading.Event()
    box = {}

    def serve() -> None:
        async def main() -> None:
            service = CompileService(cache_dir=tmp_path / "cache",
                                     use_pool=False, window=0.005)
            server = ReproServer(service, host="127.0.0.1", port=0)
            await server.start()
            box["host"], box["port"] = server.host, server.port
            box["service"] = service
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "server failed to start"
    yield box["host"], box["port"]
    try:
        with ServeClient(host=box["host"], port=box["port"]) as client:
            client.shutdown()
    except OSError:
        pass                         # already down
    thread.join(timeout=30)
    repro.cache._ACTIVE = previous


def test_ping_and_stats(live_server):
    host, port = live_server
    with ServeClient(host=host, port=port) as client:
        assert client.ping()["result"] == {"pong": True}
        stats = client.stats()
        assert stats["pool"] == "serial"


def test_pipelined_duplicates_compile_once(live_server):
    host, port = live_server
    payload = {"op": "compile", "kernel": "dot_product",
               "target": "risc16", "compiler": "record"}
    with ServeClient(host=host, port=port) as client:
        responses = client.request_many([dict(payload)
                                         for _ in range(4)])
    served = sorted(response["served_by"] for response in responses)
    assert served.count("farm") <= 1
    assert all(response["ok"] for response in responses)
    listings = {response["result"]["listing"]
                for response in responses}
    assert len(listings) == 1
    # and a fresh connection sees the artifact as hot
    with ServeClient(host=host, port=port) as client:
        repeat = client.request(dict(payload))
    assert repeat["served_by"] == "cache"


def test_error_envelope_keeps_connection_usable(live_server):
    host, port = live_server
    with ServeClient(host=host, port=port) as client:
        with pytest.raises(ServeClientError):
            client.compile(kernel="no_such_kernel")
        assert client.ping()["ok"]


def test_abrupt_disconnect_mid_request_leaves_server_up(live_server):
    host, port = live_server
    raw = socket.create_connection((host, port), timeout=30)
    raw.sendall(b'{"id": 1, "op": "compile", "kernel": "fir", '
                b'"target": "risc16"}\n')
    raw.close()                       # gone before the response lands
    with ServeClient(host=host, port=port) as client:
        assert client.ping()["ok"]
        # the orphaned compile still went through store-or-farm; a
        # repeat must not recompile
        response = client.compile(kernel="fir", target="risc16")
    assert response["served_by"] in ("cache", "coalesced", "farm")


def test_bad_json_line_answers_protocol_error(live_server):
    host, port = live_server
    raw = socket.create_connection((host, port), timeout=30)
    try:
        raw.sendall(b"this is not json\n")
        line = raw.makefile("rb").readline()
    finally:
        raw.close()
    import json
    response = json.loads(line)
    assert not response["ok"]
    assert response["error_type"] == "ProtocolError"
